//! # `jim-server` — a concurrent multi-session JIM inference service
//!
//! The paper's system is interactive by construction: a user answers
//! membership questions over many round trips. This crate turns the
//! `jim-core` engine into a long-lived service able to host many such
//! users at once:
//!
//! * [`store`] — an id-**sharded** concurrent [`SessionStore`] of **owned**
//!   sessions (engine + strategy + pending question + generation-keyed
//!   question cache), with a global max-sessions cap, LRU eviction and TTL
//!   sweeping. This is what the ownership refactor in
//!   `jim-relation`/`jim-core` (products own `Arc<Relation>`, `Engine` is
//!   `Send + 'static`) exists for.
//! * [`journal`] — the write-ahead transcript journal that de-couples
//!   session lifetime from memory residency: with a `--data-dir`, every
//!   session's origin and answered batches are on disk *before* the ack,
//!   eviction keeps sessions resumable by id (transparently, or via
//!   `ResumeSession`), and a restarted server picks up where the last
//!   process died.
//! * [`protocol`] — a JSON-lines wire protocol: `CreateSession` (inline
//!   CSV or a named `jim-synth` scenario, with strategy choice and
//!   `max_product`/`sample_seed` sampling knobs), `NextQuestion`, `TopK`,
//!   `Answer`, `Stats`, `Explain`, `Sql`, `Transcript`, `ResumeSession`,
//!   `ListSessions`, `CloseSession`.
//! * [`handler`] — transport-independent dispatch: one request line in,
//!   one response line out. Products larger than the (clamped) limit are
//!   uniformly sampled instead of rejected, and responses say so with a
//!   `sampled` flag.
//! * [`serve`] — the TCP front ends: a portable thread-per-connection
//!   transport and an epoll-driven event-loop transport (linux, via the
//!   in-repo `jim-aio` readiness shim — see [`reactor`]'s module docs),
//!   selected by `jim-serve --transport`, plus the TTL sweeper thread.
//!   Both observe a graceful [`serve::Shutdown`] signal.
//! * [`metrics`] — the server-wide observability aggregate over
//!   `jim-metrics`: per-op request/error counters and latency
//!   histograms, transport gauges and store/journal counters, exposed
//!   on the wire as the `Metrics` op and as `jim-serve
//!   --metrics-interval` log lines.
//! * [`scenario`] — named demo datasets a client can open without
//!   shipping data.
//!
//! Binaries: `jim-serve` (the server) and `jim` (an interactive REPL
//! client that plays the paper's Figure-3 "most informative" loop over the
//! wire).
//!
//! ## Example (in-process)
//!
//! ```
//! use jim_server::handler::Handler;
//! use jim_server::store::{SessionStore, StoreConfig};
//! use std::sync::Arc;
//!
//! let handler = Handler::new(Arc::new(SessionStore::new(StoreConfig::default())));
//! let r = handler.handle_line(
//!     r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
//! );
//! assert!(r.contains("\"ok\":true"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod handler;
pub mod journal;
pub mod metrics;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod scenario;
pub mod serve;
pub mod store;
pub(crate) mod sync;

pub use handler::{Handler, ServerLimits};
pub use journal::{JournalStore, StoredSession};
pub use metrics::{Op, OpMetrics, ReactorMetrics, ServerMetrics};
pub use protocol::{Request, ServerError, Source};
pub use serve::{serve, serve_with, spawn_sweeper, Shutdown, Transport, TransportLimits};
pub use store::{QuestionCache, Session, SessionStore, StoreConfig, SweepReport};
