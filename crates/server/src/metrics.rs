//! Server observability: one [`ServerMetrics`] aggregate shared by every
//! layer of the service.
//!
//! The aggregate lives on the [`crate::store::SessionStore`] (the one
//! object the handler, both transports, the sweeper and the binaries all
//! already share) and is built on `jim-metrics` primitives: every metric
//! is registered by name in a [`Registry`] **and** cached as a typed
//! `Arc` handle, so hot paths never touch the registry lock.
//!
//! Three layers report here:
//!
//! * **per-op** ([`OpMetrics`]) — request count, error count and a
//!   log-scale latency histogram for each wire op, recorded by
//!   [`crate::handler::Handler::handle_line`]. The request counter is
//!   bumped *before* dispatch, so a `Metrics` op's own snapshot includes
//!   itself (its latency lands after, which is why a snapshot's latency
//!   count may trail its request count by the in-flight request).
//! * **transport** — dispatched lines, decode refusals (bad JSON or
//!   invalid UTF-8), oversized lines, live connections, and the epoll
//!   worker-queue depth, recorded by `serve.rs` / `reactor.rs`.
//! * **store/journal** — resident hits, disk resumes, replayed batches,
//!   journal bytes written, eviction totals and sweep counters, recorded
//!   by `store.rs` and the sweeper.
//!
//! The wire's `Metrics` op renders [`ServerMetrics::snapshot_fields`];
//! `jim-serve --metrics-interval` logs [`ServerMetrics::summary`]. Both
//! read the same counters, so the log line and the snapshot can never
//! disagree.

use crate::protocol::Request;
use crate::sync::LockExt;
use jim_json::Json;
use jim_metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Every wire op, in protocol-table order. `Op as usize` indexes the
/// per-op metrics table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `CreateSession`
    CreateSession,
    /// `NextQuestion`
    NextQuestion,
    /// `TopK`
    TopK,
    /// `Answer`
    Answer,
    /// `AnswerBatch`
    AnswerBatch,
    /// `Stats`
    Stats,
    /// `Explain`
    Explain,
    /// `Sql`
    Sql,
    /// `Transcript`
    Transcript,
    /// `ResumeSession`
    ResumeSession,
    /// `ListSessions`
    ListSessions,
    /// `CloseSession`
    CloseSession,
    /// `Metrics`
    Metrics,
}

impl Op {
    /// Every op, in wire order.
    pub const ALL: [Op; 13] = [
        Op::CreateSession,
        Op::NextQuestion,
        Op::TopK,
        Op::Answer,
        Op::AnswerBatch,
        Op::Stats,
        Op::Explain,
        Op::Sql,
        Op::Transcript,
        Op::ResumeSession,
        Op::ListSessions,
        Op::CloseSession,
        Op::Metrics,
    ];

    /// The wire name (the `"op"` field value).
    pub fn name(self) -> &'static str {
        match self {
            Op::CreateSession => "CreateSession",
            Op::NextQuestion => "NextQuestion",
            Op::TopK => "TopK",
            Op::Answer => "Answer",
            Op::AnswerBatch => "AnswerBatch",
            Op::Stats => "Stats",
            Op::Explain => "Explain",
            Op::Sql => "Sql",
            Op::Transcript => "Transcript",
            Op::ResumeSession => "ResumeSession",
            Op::ListSessions => "ListSessions",
            Op::CloseSession => "CloseSession",
            Op::Metrics => "Metrics",
        }
    }

    /// The op of a decoded request.
    pub fn of(request: &Request) -> Op {
        match request {
            Request::CreateSession { .. } => Op::CreateSession,
            Request::NextQuestion { .. } => Op::NextQuestion,
            Request::TopK { .. } => Op::TopK,
            Request::Answer { .. } => Op::Answer,
            Request::AnswerBatch { .. } => Op::AnswerBatch,
            Request::Stats { .. } => Op::Stats,
            Request::Explain { .. } => Op::Explain,
            Request::Sql { .. } => Op::Sql,
            Request::Transcript { .. } => Op::Transcript,
            Request::ResumeSession { .. } => Op::ResumeSession,
            Request::ListSessions => Op::ListSessions,
            Request::CloseSession { .. } => Op::CloseSession,
            Request::Metrics => Op::Metrics,
        }
    }
}

/// One reactor thread's share of the transport counters (epoll only).
///
/// The global transport gauges are **aggregates**: every reactor
/// increments and decrements the same `transport.live_connections` /
/// `transport.worker_queue_depth` handles symmetrically (no reactor ever
/// `set`s them), so N reactors sum correctly. These per-reactor handles
/// exist on top of that so a snapshot can show *skew* — a reactor whose
/// queue is deep or whose connection share is lopsided.
pub struct ReactorMetrics {
    /// Complete lines this reactor handed to its worker pool.
    pub dispatched: Arc<Counter>,
    /// Connections currently owned by this reactor.
    pub live_connections: Arc<Gauge>,
    /// Jobs queued at this reactor's worker pool right now.
    pub worker_queue_depth: Arc<Gauge>,
    /// Connections this reactor reaped for idling past the timeout.
    pub idle_timeouts: Arc<Counter>,
    /// Over-cap connections shed that round-robin would have sent here.
    pub sheds: Arc<Counter>,
}

/// Per-op counters and latency.
pub struct OpMetrics {
    /// Requests dispatched (counted before the handler runs).
    pub requests: Arc<Counter>,
    /// Responses with `ok:false`.
    pub errors: Arc<Counter>,
    /// Handler latency in microseconds.
    pub latency: Arc<Histogram>,
}

/// The server-wide metrics aggregate (see module docs).
pub struct ServerMetrics {
    registry: Registry,
    started: Instant,
    ops: Vec<OpMetrics>,
    /// Complete request lines handed to the handler (both transports).
    pub dispatched: Arc<Counter>,
    /// Lines refused at decode: invalid UTF-8 or unparseable JSON.
    pub decode_refused: Arc<Counter>,
    /// Lines refused for exceeding the 16 MiB cap.
    pub oversized: Arc<Counter>,
    /// Currently open client connections (summed across reactors).
    pub live_connections: Arc<Gauge>,
    /// Jobs queued at the epoll worker pools right now, summed across
    /// reactors (0 on threads).
    pub worker_queue_depth: Arc<Gauge>,
    /// Connections refused at the admission cap with `Overloaded`.
    pub sheds: Arc<Counter>,
    /// Connections reaped for idling past the timeout.
    pub idle_timeouts: Arc<Counter>,
    /// Per-reactor breakdowns, one entry per reactor index (lazily
    /// registered by the epoll transport; empty on threads).
    reactors: Mutex<Vec<Arc<ReactorMetrics>>>,
    /// Session lookups answered from memory.
    pub store_hits: Arc<Counter>,
    /// Session lookups rehydrated from the journal (evicted → resident).
    pub store_resumes: Arc<Counter>,
    /// Label batches replayed during those resumes.
    pub replayed_batches: Arc<Counter>,
    /// Bytes appended to session journals (headers + batches).
    pub journal_bytes: Arc<Counter>,
    /// Sessions dropped from memory by LRU/TTL since start.
    pub evicted_total: Arc<Counter>,
    /// Of those, how many stayed resumable on disk.
    pub persisted_total: Arc<Counter>,
    /// Sessions resident in memory (refreshed on create/evict/sweep).
    pub resident_sessions: Arc<Gauge>,
    /// Sessions on disk only (refreshed by sweeps and listings).
    pub disk_sessions: Arc<Gauge>,
    /// TTL sweeper passes.
    pub sweeps: Arc<Counter>,
    /// Sessions the sweeper evicted across all passes.
    pub swept_sessions: Arc<Counter>,
    /// Sessions whose oversized product opened through factorized
    /// construction (full fidelity, no sampling).
    pub factorized_sessions: Arc<Counter>,
    /// Signature groups across those factorized sessions — the partition
    /// size the sweep produced instead of enumerating the product.
    pub signature_groups: Arc<Counter>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// A fresh aggregate with every metric registered and zeroed.
    pub fn new() -> ServerMetrics {
        let registry = Registry::new();
        let ops = Op::ALL
            .iter()
            .map(|op| OpMetrics {
                requests: registry.counter(&format!("ops.{}.requests", op.name())),
                errors: registry.counter(&format!("ops.{}.errors", op.name())),
                latency: registry.histogram(&format!("ops.{}.latency_us", op.name())),
            })
            .collect();
        ServerMetrics {
            dispatched: registry.counter("transport.dispatched"),
            decode_refused: registry.counter("transport.decode_refused"),
            oversized: registry.counter("transport.oversized"),
            live_connections: registry.gauge("transport.live_connections"),
            worker_queue_depth: registry.gauge("transport.worker_queue_depth"),
            sheds: registry.counter("transport.sheds"),
            idle_timeouts: registry.counter("transport.idle_timeouts"),
            reactors: Mutex::new(Vec::new()),
            store_hits: registry.counter("store.hits"),
            store_resumes: registry.counter("store.resumes"),
            replayed_batches: registry.counter("store.replayed_batches"),
            journal_bytes: registry.counter("store.journal_bytes"),
            evicted_total: registry.counter("store.evicted_total"),
            persisted_total: registry.counter("store.persisted_total"),
            resident_sessions: registry.gauge("store.resident_sessions"),
            disk_sessions: registry.gauge("store.disk_sessions"),
            sweeps: registry.counter("store.sweeps"),
            swept_sessions: registry.counter("store.swept_sessions"),
            factorized_sessions: registry.counter("store.factorized_sessions"),
            signature_groups: registry.counter("store.signature_groups"),
            ops,
            registry,
            started: Instant::now(),
        }
    }

    /// The per-op metrics of one wire op.
    pub fn op(&self, op: Op) -> &OpMetrics {
        &self.ops[op as usize]
    }

    /// The per-reactor metrics of reactor `index`, registering the slots
    /// up through `index` on first use. Registration is name-keyed, so a
    /// transport restart over the same store (tests do this) gets the
    /// same handles back — counters continue, they don't double-register.
    pub fn reactor(&self, index: usize) -> Arc<ReactorMetrics> {
        let mut reactors = self.reactors.lock_unpoisoned();
        while reactors.len() <= index {
            let i = reactors.len();
            reactors.push(Arc::new(ReactorMetrics {
                dispatched: self
                    .registry
                    .counter(&format!("transport.reactor.{i}.dispatched")),
                live_connections: self
                    .registry
                    .gauge(&format!("transport.reactor.{i}.live_connections")),
                worker_queue_depth: self
                    .registry
                    .gauge(&format!("transport.reactor.{i}.worker_queue_depth")),
                idle_timeouts: self
                    .registry
                    .counter(&format!("transport.reactor.{i}.idle_timeouts")),
                sheds: self
                    .registry
                    .counter(&format!("transport.reactor.{i}.sheds")),
            }));
        }
        Arc::clone(&reactors[index])
    }

    /// The underlying name-keyed registry (every typed handle above is
    /// also reachable here).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// All op latencies merged into one snapshot, plus total request and
    /// error counts.
    pub fn totals(&self) -> (u64, u64, HistogramSnapshot) {
        let mut latency = HistogramSnapshot::empty();
        let (mut requests, mut errors) = (0u64, 0u64);
        for m in &self.ops {
            requests += m.requests.get();
            errors += m.errors.get();
            latency.merge(&m.latency.snapshot());
        }
        (requests, errors, latency)
    }

    /// The `Metrics` response body: uptime plus the `ops` / `transport` /
    /// `store` sections.
    pub fn snapshot_fields(&self) -> Vec<(&'static str, Json)> {
        let ops: Vec<(String, Json)> = Op::ALL
            .iter()
            .map(|&op| {
                let m = self.op(op);
                let lat = m.latency.snapshot();
                (
                    op.name().to_string(),
                    Json::object([
                        ("requests", Json::from(m.requests.get())),
                        ("errors", Json::from(m.errors.get())),
                        ("latency_us", histogram_json(&lat)),
                    ]),
                )
            })
            .collect();
        vec![
            (
                "uptime_secs",
                Json::from(self.started.elapsed().as_secs_f64()),
            ),
            // Which jim-simd kernel backend the engine's bitset sweeps
            // run on ("avx2", "generic" or "off") — fixed at first
            // dispatch, surfaced so a fleet's metrics reveal hosts that
            // silently fell back to the portable path.
            ("simd_backend", Json::from(jim_simd::active_name())),
            ("ops", Json::Object(ops)),
            (
                "transport",
                Json::object([
                    ("dispatched", Json::from(self.dispatched.get())),
                    ("decode_refused", Json::from(self.decode_refused.get())),
                    ("oversized", Json::from(self.oversized.get())),
                    ("live_connections", Json::from(self.live_connections.get())),
                    (
                        "worker_queue_depth",
                        Json::from(self.worker_queue_depth.get()),
                    ),
                    ("sheds", Json::from(self.sheds.get())),
                    ("idle_timeouts", Json::from(self.idle_timeouts.get())),
                    (
                        "reactors",
                        Json::Array(
                            self.reactors
                                .lock_unpoisoned()
                                .iter()
                                .map(|r| {
                                    Json::object([
                                        ("dispatched", Json::from(r.dispatched.get())),
                                        ("live_connections", Json::from(r.live_connections.get())),
                                        (
                                            "worker_queue_depth",
                                            Json::from(r.worker_queue_depth.get()),
                                        ),
                                        ("idle_timeouts", Json::from(r.idle_timeouts.get())),
                                        ("sheds", Json::from(r.sheds.get())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "store",
                Json::object([
                    ("hits", Json::from(self.store_hits.get())),
                    ("resumes", Json::from(self.store_resumes.get())),
                    ("replayed_batches", Json::from(self.replayed_batches.get())),
                    ("journal_bytes", Json::from(self.journal_bytes.get())),
                    ("evicted_total", Json::from(self.evicted_total.get())),
                    ("persisted_total", Json::from(self.persisted_total.get())),
                    (
                        "resident_sessions",
                        Json::from(self.resident_sessions.get()),
                    ),
                    ("disk_sessions", Json::from(self.disk_sessions.get())),
                    ("sweeps", Json::from(self.sweeps.get())),
                    ("swept_sessions", Json::from(self.swept_sessions.get())),
                    (
                        "factorized_sessions",
                        Json::from(self.factorized_sessions.get()),
                    ),
                    ("signature_groups", Json::from(self.signature_groups.get())),
                ]),
            ),
        ]
    }

    /// The periodic log line `jim-serve --metrics-interval` emits — the
    /// same counters the snapshot reads, one formatted line.
    pub fn summary(&self) -> String {
        let (requests, errors, latency) = self.totals();
        format!(
            "metrics: requests={requests} errors={errors} \
             p50={}µs p99={}µs max={}µs conns={} queue={} \
             resident={} disk={} evicted={} ({} resumable)",
            latency.p50(),
            latency.p99(),
            latency.max(),
            self.live_connections.get(),
            self.worker_queue_depth.get(),
            self.resident_sessions.get(),
            self.disk_sessions.get(),
            self.evicted_total.get(),
            self.persisted_total.get(),
        )
    }
}

/// Render one latency snapshot for the wire.
fn histogram_json(lat: &HistogramSnapshot) -> Json {
    Json::object([
        ("count", Json::from(lat.count())),
        ("mean", Json::from(lat.mean())),
        ("p50", Json::from(lat.p50())),
        ("p90", Json::from(lat.p90())),
        ("p99", Json::from(lat.p99())),
        ("max", Json::from(lat.max())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_of_covers_every_request() {
        assert_eq!(Op::ALL.len(), 13);
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(*op as usize, i, "table order must match discriminants");
        }
        assert_eq!(
            Op::of(&Request::NextQuestion { session: 1 }),
            Op::NextQuestion
        );
        assert_eq!(Op::of(&Request::Metrics), Op::Metrics);
        assert_eq!(Op::of(&Request::ListSessions), Op::ListSessions);
    }

    #[test]
    fn typed_handles_alias_the_registry() {
        let m = ServerMetrics::new();
        m.op(Op::Answer).requests.inc();
        m.dispatched.add(3);
        let snap = m.registry().snapshot();
        assert_eq!(snap.counters["ops.Answer.requests"], 1);
        assert_eq!(snap.counters["transport.dispatched"], 3);
    }

    #[test]
    fn snapshot_fields_carry_all_sections() {
        let m = ServerMetrics::new();
        m.op(Op::CreateSession).requests.inc();
        m.op(Op::CreateSession).latency.record(1000);
        let json = Json::Object(
            m.snapshot_fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
        let create = json.get("ops").unwrap().get("CreateSession").unwrap();
        assert_eq!(create.get("requests").unwrap().as_u64(), Some(1));
        assert_eq!(
            create
                .get("latency_us")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert!(json.get("transport").unwrap().get("dispatched").is_some());
        assert!(json.get("store").unwrap().get("evicted_total").is_some());
        assert!(json.get("uptime_secs").is_some());
        // The snapshot names the kernel backend the engine dispatches to.
        let backend = json.get("simd_backend").unwrap().as_str().unwrap();
        assert!(
            ["off", "generic", "avx2"].contains(&backend),
            "unexpected backend {backend:?}"
        );
    }

    #[test]
    fn summary_is_one_line_from_the_same_counters() {
        let m = ServerMetrics::new();
        m.op(Op::Answer).requests.inc();
        m.op(Op::Answer).latency.record(10);
        m.evicted_total.add(2);
        m.persisted_total.inc();
        let line = m.summary();
        assert!(!line.contains('\n'));
        assert!(line.contains("requests=1"), "{line}");
        assert!(line.contains("evicted=2 (1 resumable)"), "{line}");
    }
}
