//! Request dispatch: the transport-independent heart of the service.
//!
//! [`Handler::handle_line`] maps one wire line to one response line; the
//! TCP server, the REPL's offline mode and the integration tests all call
//! it. The handler holds the shared [`SessionStore`] and nothing else.

use crate::journal;
use crate::metrics::Op;
use crate::protocol::{error, ok, parse_strategy, Request, ServerError, Source};
use crate::store::{QuestionCache, Session, SessionStore};
use crate::sync::LockExt;
use jim_core::{explain, Engine, EngineOptions, SessionOrigin, StrategyKind, Transcript};
use jim_json::Json;
use jim_relation::ProductId;
use std::sync::Arc;
use std::time::Instant;

/// Server-side resource ceilings the client cannot raise.
#[derive(Debug, Clone, Copy)]
pub struct ServerLimits {
    /// The most product tuples a session may enumerate **or sample**. A
    /// client `max_product` is clamped to this; products larger than the
    /// effective limit open through factorized construction at full
    /// fidelity (or a uniform sample of this size under `force_sample`).
    pub max_product: u64,
    /// The most labels one `AnswerBatch` may carry. Validation is O(batch)
    /// and the batch is held in memory while the session lock is taken,
    /// so the cap bounds per-request work the same way `max_product`
    /// bounds per-session memory.
    pub max_batch: usize,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            max_product: EngineOptions::default().max_product,
            max_batch: 64,
        }
    }
}

/// Dispatches decoded requests against the session store.
pub struct Handler {
    store: Arc<SessionStore>,
    limits: ServerLimits,
}

impl Handler {
    /// A handler over a shared store with default limits.
    pub fn new(store: Arc<SessionStore>) -> Self {
        Handler::with_limits(store, ServerLimits::default())
    }

    /// A handler with explicit resource ceilings.
    pub fn with_limits(store: Arc<SessionStore>, limits: ServerLimits) -> Self {
        Handler { store, limits }
    }

    /// The shared store (the server's sweeper thread also holds it).
    pub fn store(&self) -> &Arc<SessionStore> {
        &self.store
    }

    /// One wire line in, one wire line out. Never panics on client input:
    /// malformed requests become `{"ok":false,...}` responses.
    ///
    /// This is also where per-op metrics are recorded (callers of the
    /// lower-level [`Handler::handle`] bypass them): the request counter
    /// is bumped *before* dispatch — a `Metrics` op's snapshot includes
    /// itself — latency and the error counter after.
    pub fn handle_line(&self, line: &str) -> String {
        let metrics = self.store.metrics();
        let response = match Request::parse(line) {
            Ok(request) => {
                let op = metrics.op(Op::of(&request));
                op.requests.inc();
                let start = Instant::now();
                let response = self.handle(request);
                op.latency.record_duration(start.elapsed());
                if response.get("ok").and_then(Json::as_bool) == Some(false) {
                    op.errors.inc();
                }
                response
            }
            Err(message) => {
                metrics.decode_refused.inc();
                error(message)
            }
        };
        response.render()
    }

    /// Dispatch one decoded request.
    pub fn handle(&self, request: Request) -> Json {
        match request {
            Request::CreateSession {
                source,
                strategy,
                max_product,
                sample_seed,
                force_sample,
            } => self.create_session(source, strategy, max_product, sample_seed, force_sample),
            Request::NextQuestion { session } => self.with_session(session, Self::next_question),
            Request::TopK { session, k } => self.with_session(session, |s| Self::top_k(s, k)),
            Request::Answer {
                session,
                tuple,
                label,
            } => self.with_session(session, |s| self.answer(s, tuple, label)),
            Request::AnswerBatch { session, labels } => {
                let max_batch = self.limits.max_batch;
                if labels.len() > max_batch {
                    // Reject before taking the session lock: an oversized
                    // batch must cost the server nothing.
                    return error(format!(
                        "batch of {} labels exceeds the server cap of {max_batch}",
                        labels.len()
                    ));
                }
                self.with_session(session, |s| self.answer_batch(s, &labels))
            }
            Request::Stats { session } => self.with_session(session, Self::stats),
            Request::Explain { session, tuple } => {
                self.with_session(session, |s| Self::explain_tuple(s, tuple))
            }
            Request::Sql { session } => self.with_session(session, Self::sql),
            Request::Transcript { session } => self.with_session(session, Self::transcript),
            Request::ResumeSession { session } => self.resume_session(session),
            Request::ListSessions => self.list_sessions(),
            Request::CloseSession { session } => {
                if self.store.remove(session) {
                    ok([("closed", Json::from(session))])
                } else {
                    error(format!("unknown session {session}"))
                }
            }
            Request::Metrics => self.metrics_snapshot(),
        }
    }

    /// The `Metrics` op: refresh the session-population gauges (cheap, and
    /// a snapshot should not be stale by up to one sweep interval), then
    /// render the aggregate.
    fn metrics_snapshot(&self) -> Json {
        let metrics = self.store.metrics();
        metrics.resident_sessions.set(self.store.len() as i64);
        metrics
            .disk_sessions
            .set(self.store.disk_ids().len() as i64);
        ok(metrics.snapshot_fields())
    }

    fn with_session(&self, id: u64, f: impl FnOnce(&mut Session) -> Json) -> Json {
        match self.store.get(id) {
            Some(handle) => match handle.lock() {
                Ok(mut guard) => f(&mut guard),
                // A poisoned session lock means an earlier request
                // panicked mid-engine-mutation: the state (and the
                // journal batch whose application panicked) cannot be
                // trusted, so shed the session instead of serving — or
                // resuming — a half-updated copy. Other sessions are
                // untouched; infrastructure locks recover instead (see
                // `crate::sync`).
                Err(_) => {
                    self.store.remove(id);
                    ServerError::SessionPoisoned.response()
                }
            },
            None => error(format!("unknown session {id} (expired or never created)")),
        }
    }

    fn create_session(
        &self,
        source: Source,
        strategy: Option<String>,
        max_product: Option<u64>,
        sample_seed: Option<u64>,
        force_sample: bool,
    ) -> Json {
        let product = match journal::build_product(&source) {
            Ok(p) => p,
            Err(message) => return error(message),
        };
        let kind = match strategy.as_deref().map(parse_strategy) {
            None => StrategyKind::LookaheadMinPrune,
            Some(Ok(kind)) => kind,
            Some(Err(message)) => return error(message),
        };
        // Clients may lower the product-size guard, never raise it: the
        // engine eagerly enumerates (or samples) up to `limit` tuples, so
        // an unbounded client-supplied limit would be a remote allocation
        // bomb.
        let limit = match max_product {
            None => self.limits.max_product,
            Some(0) => return error("`max_product` must be positive"),
            Some(l) => l.min(self.limits.max_product),
        };
        // The origin records the *effective* knobs (post-clamp limit, the
        // seed actually used, the construction mode), so a resume rebuilds
        // the identical engine even if server ceilings changed in between.
        // Too-large products open at full fidelity through factorized
        // construction (`Engine::from_factorized` — the partition is
        // computed from the base relations, never the product); a uniform
        // sample (`Product::sample` → `Engine::from_ids`) is the explicit
        // opt-in via `force_sample`, and the fallback when factorization
        // exceeds its sweep budget.
        let oversized = product.size() > limit;
        let mut origin = SessionOrigin {
            source,
            strategy,
            max_product: limit,
            sample_seed: sample_seed.unwrap_or(0),
            sampled: oversized && force_sample,
            factorized: oversized && !force_sample,
        };
        let engine = match journal::engine_from_product(product, &origin) {
            Ok(e) => e,
            Err(message) if origin.factorized && message.contains("factorization too large") => {
                // The block structure was too rich to sweep: fall back to
                // sampling, and flip the origin so the journal records the
                // construction that actually ran.
                origin.factorized = false;
                origin.sampled = true;
                let product = match journal::build_product(&origin.source) {
                    Ok(p) => p,
                    Err(message) => return error(message),
                };
                match journal::engine_from_product(product, &origin) {
                    Ok(e) => e,
                    Err(message) => return error(message),
                }
            }
            Err(message) => return error(message),
        };
        if origin.factorized {
            let metrics = self.store.metrics();
            metrics.factorized_sessions.inc();
            metrics.signature_groups.add(engine.num_groups() as u64);
        }
        let columns = columns_of(&engine);
        let tuples = engine.stats().total_tuples;
        let atoms = engine.universe().len();
        let sampled = origin.sampled;
        let factorized = origin.factorized;
        let (session, evicted) = self.store.create_session(
            engine,
            kind.build(),
            kind.to_string(),
            sampled,
            Some(origin),
        );
        // The store handed this handle out for the first time a moment
        // ago; a fresh mutex cannot be poisoned, so recovery is safe.
        let session = session.lock_unpoisoned();
        let mut fields = vec![
            ("session", Json::from(session.id)),
            ("strategy", Json::from(kind.to_string())),
            ("tuples", Json::from(tuples)),
            ("atoms", Json::from(atoms)),
            ("sampled", Json::Bool(sampled)),
            ("factorized", Json::Bool(factorized)),
            ("persisted", Json::Bool(session.persisted)),
            ("columns", Json::Array(columns)),
        ];
        if let Some(evicted) = evicted {
            fields.push(("evicted", Json::from(evicted)));
        }
        ok(fields)
    }

    /// Explicitly rehydrate an evicted session (resume also happens
    /// transparently inside [`SessionStore::get`] on any op; this op
    /// surfaces the shape of the resumed session and journal errors).
    fn resume_session(&self, id: u64) -> Json {
        let handle = match self.store.fetch(id) {
            Err(message) => return error(message),
            Ok(None) => {
                return error(format!(
                    "unknown session {id} (not resident and no journal on disk)"
                ))
            }
            Ok(Some(handle)) => handle,
        };
        let session = match handle.lock() {
            Ok(guard) => guard,
            // Same shed policy as `with_session`: a resident session
            // whose lock an earlier panic poisoned is not resumable.
            Err(_) => {
                self.store.remove(id);
                return ServerError::SessionPoisoned.response();
            }
        };
        let stats = session.engine.stats();
        ok([
            ("session", Json::from(session.id)),
            ("strategy", Json::from(session.strategy_name.as_str())),
            ("tuples", Json::from(stats.total_tuples)),
            ("atoms", Json::from(session.engine.universe().len())),
            ("interactions", Json::from(stats.interactions())),
            ("resolved", Json::Bool(session.engine.is_resolved())),
            ("sampled", Json::Bool(session.sampled)),
            ("factorized", Json::Bool(session.engine.is_factorized())),
            ("persisted", Json::Bool(session.persisted)),
            ("columns", Json::Array(columns_of(&session.engine))),
        ])
    }

    fn next_question(session: &mut Session) -> Json {
        let session = &mut *session;
        let generation = session.engine.generation();
        let choice = match session.cache {
            // The engine hasn't changed since the last NextQuestion: the
            // cached choice is still exactly right — no strategy work.
            Some(c) if c.generation == generation => c.choice,
            _ => {
                // Re-propose a pending question that is still informative
                // rather than consulting the strategy again (idempotent
                // retries; stable under Random). A pending tuple that
                // free-form answers meanwhile labeled OR pruned must not
                // be re-proposed — in particular, the session may already
                // be resolved.
                let pending = session
                    .pending
                    .filter(|&id| session.engine.is_informative(id).unwrap_or(false));
                let choice = match pending {
                    Some(id) => Some(id),
                    None => {
                        let view = session.engine.candidates();
                        session.strategy.choose(&session.engine, &view)
                    }
                };
                session.cache = Some(QuestionCache { generation, choice });
                choice
            }
        };
        match choice {
            None => {
                session.pending = None;
                resolved_response(&session.engine)
            }
            Some(id) => {
                session.pending = Some(id);
                let mut fields = vec![("resolved", Json::Bool(false))];
                fields.extend(tuple_fields(&session.engine, id));
                fields.push((
                    "informative_remaining",
                    Json::from(session.engine.stats().informative),
                ));
                ok(fields)
            }
        }
    }

    fn top_k(session: &mut Session, k: usize) -> Json {
        let session = &mut *session;
        let batch = {
            let view = session.engine.candidates();
            session.strategy.top_k(&session.engine, &view, k)
        };
        if batch.is_empty() {
            return resolved_response(&session.engine);
        }
        session.pending = Some(batch[0]);
        // The batch head supersedes any earlier NextQuestion proposal: the
        // question cache must follow it, or a NextQuestion at the same
        // generation would resurrect the stale choice over the pending one.
        session.cache = Some(QuestionCache {
            generation: session.engine.generation(),
            choice: Some(batch[0]),
        });
        let tuples: Vec<Json> = batch
            .iter()
            .map(|&id| Json::object(tuple_fields(&session.engine, id)))
            .collect();
        ok([
            ("resolved", Json::Bool(false)),
            ("tuples", Json::Array(tuples)),
        ])
    }

    fn answer(&self, session: &mut Session, tuple: Option<u64>, label: jim_core::Label) -> Json {
        let id = match tuple.map(ProductId).or(session.pending) {
            Some(id) => id,
            None => {
                return error("no pending question; ask NextQuestion first or pass a `tuple` rank")
            }
        };
        match session.engine.label(id, label) {
            Err(e) => error(e.to_string()),
            Ok(outcome) => {
                // Journal the accepted 1-label batch before acking (the
                // engine rejected path above journals nothing).
                self.store.record_batch(session, &[(id, label)]);
                if session.pending == Some(id) {
                    session.pending = None;
                }
                let mut fields = vec![
                    ("tuple", Json::from(id.0)),
                    ("label", Json::from(label.to_string())),
                    ("was_informative", Json::Bool(outcome.was_informative)),
                    ("pruned", Json::from(outcome.pruned)),
                    (
                        "informative_remaining",
                        Json::from(outcome.informative_remaining),
                    ),
                    ("resolved", Json::Bool(outcome.resolved)),
                ];
                if outcome.resolved {
                    let predicate = session.engine.result();
                    fields.push(("predicate", Json::from(predicate.to_string())));
                    fields.push(("sql", Json::from(predicate.to_sql())));
                }
                ok(fields)
            }
        }
    }

    fn answer_batch(&self, session: &mut Session, labels: &[(u64, jim_core::Label)]) -> Json {
        let batch: Vec<(ProductId, jim_core::Label)> = labels
            .iter()
            .map(|&(rank, label)| (ProductId(rank), label))
            .collect();
        match session.engine.label_batch(&batch) {
            // Atomic: on any rejected entry the engine is untouched, so
            // the pending question and its generation-keyed cache stay
            // exactly valid — and nothing is journaled.
            Err(e) => error(e.to_string()),
            Ok(outcome) => {
                // One journal line per applied batch, before the ack —
                // replay re-applies the same batches in the same order.
                self.store.record_batch(session, &batch);
                if let Some(p) = session.pending {
                    if batch.iter().any(|&(id, _)| id == p) {
                        session.pending = None;
                    }
                }
                // No cache surgery needed: the batch bumped the engine
                // generation exactly once, which is what the question
                // cache is keyed on.
                let mut fields = vec![
                    ("applied", Json::from(outcome.applied)),
                    ("informative_labels", Json::from(outcome.informative_labels)),
                    ("pruned", Json::from(outcome.pruned)),
                    (
                        "informative_remaining",
                        Json::from(outcome.informative_remaining),
                    ),
                    ("resolved", Json::Bool(outcome.resolved)),
                ];
                if outcome.resolved {
                    let predicate = session.engine.result();
                    fields.push(("predicate", Json::from(predicate.to_string())));
                    fields.push(("sql", Json::from(predicate.to_sql())));
                }
                ok(fields)
            }
        }
    }

    fn stats(session: &mut Session) -> Json {
        let stats = session.engine.stats();
        ok([
            ("total_tuples", Json::from(stats.total_tuples)),
            ("labeled_positive", Json::from(stats.labeled_positive)),
            ("labeled_negative", Json::from(stats.labeled_negative)),
            ("pruned", Json::from(stats.pruned)),
            ("informative", Json::from(stats.informative)),
            ("interactions", Json::from(stats.interactions())),
            (
                "wasted_interactions",
                Json::from(stats.wasted_interactions()),
            ),
            ("resolved_fraction", Json::from(stats.resolved_fraction())),
            ("resolved", Json::Bool(session.engine.is_resolved())),
            ("sampled", Json::Bool(session.sampled)),
            ("factorized", Json::Bool(session.engine.is_factorized())),
            ("strategy", Json::from(session.strategy_name.as_str())),
            ("summary", Json::from(stats.to_string())),
        ])
    }

    fn explain_tuple(session: &mut Session, tuple: Option<u64>) -> Json {
        let id = match tuple.map(ProductId).or(session.pending) {
            Some(id) => id,
            None => return error("pass a `tuple` rank or ask NextQuestion first"),
        };
        let class = match session.engine.classify(id) {
            Ok(class) => class,
            Err(e) => return error(e.to_string()),
        };
        match explain(&session.engine, id) {
            Err(e) => error(e.to_string()),
            Ok(explanation) => ok([
                ("tuple", Json::from(id.0)),
                ("class", Json::from(format!("{class:?}"))),
                ("explanation", Json::from(explanation.to_string())),
            ]),
        }
    }

    fn sql(session: &mut Session) -> Json {
        let predicate = session.engine.result();
        ok([
            ("resolved", Json::Bool(session.engine.is_resolved())),
            ("predicate", Json::from(predicate.to_string())),
            ("sql", Json::from(predicate.to_sql())),
            ("gav", Json::from(predicate.to_gav("Inferred"))),
        ])
    }

    fn transcript(session: &mut Session) -> Json {
        // With provenance attached, the wire transcript is self-contained:
        // origin rebuilds the instance, the labels replay the interaction.
        let mut transcript = Transcript::capture(&session.engine);
        if let Some(origin) = &session.origin {
            transcript = transcript.with_origin(origin.clone());
        }
        ok([
            ("transcript", transcript.to_json()),
            ("text", Json::from(transcript.to_string())),
        ])
    }

    fn list_sessions(&self) -> Json {
        let mut resident_count = 0u64;
        let mut sessions: Vec<Json> = self
            .store
            .ids()
            .into_iter()
            .filter_map(|id| {
                // peek, not get: listing sessions must not refresh their
                // TTL/LRU stamps, or a monitoring poller keeps every
                // abandoned session alive forever.
                let handle = self.store.peek(id)?;
                // A poisoned session is omitted from the listing rather
                // than shed here: listing is read-only, and the next
                // direct op on the session sheds it via `with_session`.
                let guard: std::sync::MutexGuard<'_, Session> = handle.lock().ok()?;
                resident_count += 1;
                Some(Json::object([
                    ("session", Json::from(id)),
                    ("resident", Json::Bool(true)),
                    ("persisted", Json::Bool(guard.persisted)),
                    ("strategy", Json::from(guard.strategy_name.as_str())),
                    ("tuples", Json::from(guard.engine.stats().total_tuples)),
                    (
                        "interactions",
                        Json::from(guard.engine.stats().interactions()),
                    ),
                    ("resolved", Json::Bool(guard.engine.is_resolved())),
                ]))
            })
            .collect();
        // Evicted-but-durable sessions, readable straight off their
        // journal headers (label lines are scanned, not decoded) — no
        // engine rebuild, and (like peek) nothing is resurrected.
        let mut disk_count = 0u64;
        if let Some(journal) = self.store.journal() {
            for id in self.store.disk_ids() {
                let Ok(Some((origin, interactions))) = journal.peek_meta(id) else {
                    continue;
                };
                let strategy = journal::strategy_kind(&origin)
                    .map(|kind| kind.to_string())
                    .unwrap_or_else(|_| "?".into());
                disk_count += 1;
                sessions.push(Json::object([
                    ("session", Json::from(id)),
                    ("resident", Json::Bool(false)),
                    ("persisted", Json::Bool(true)),
                    ("strategy", Json::from(strategy)),
                    ("interactions", Json::from(interactions)),
                ]));
            }
        }
        // The store counters ride along (same names as the metrics
        // snapshot's `store` section), so a monitoring poller gets the
        // population and its churn in one response.
        let metrics = self.store.metrics();
        ok([
            ("sessions", Json::Array(sessions)),
            ("resident_count", Json::from(resident_count)),
            ("disk_count", Json::from(disk_count)),
            ("evicted_total", Json::from(self.store.evicted_total())),
            ("persisted_total", Json::from(self.store.persisted_total())),
            ("resumed_total", Json::from(metrics.store_resumes.get())),
            (
                "replayed_batches",
                Json::from(metrics.replayed_batches.get()),
            ),
        ])
    }
}

/// `{resolved:true}` plus the inferred query.
fn resolved_response(engine: &Engine) -> Json {
    let predicate = engine.result();
    ok([
        ("resolved", Json::Bool(true)),
        ("predicate", Json::from(predicate.to_string())),
        ("sql", Json::from(predicate.to_sql())),
    ])
}

/// `tuple` + rendered `values` fields for one candidate.
fn tuple_fields(engine: &Engine, id: ProductId) -> Vec<(&'static str, Json)> {
    let values = match engine.product().tuple(id) {
        Ok(tuple) => tuple
            .values()
            .iter()
            .map(|v| Json::from(v.to_string()))
            .collect(),
        Err(_) => Vec::new(),
    };
    vec![("tuple", Json::from(id.0)), ("values", Json::Array(values))]
}

/// Qualified column names of the product schema.
fn columns_of(engine: &Engine) -> Vec<Json> {
    let schema = engine.product().schema();
    // Every attr yielded by `attrs()` has a qualified name; `filter_map`
    // keeps the response path panic-free if that invariant ever slips.
    schema
        .attrs()
        .filter_map(|ga| schema.qualified_name(ga).ok().map(Json::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use jim_core::{CandidateView, Strategy};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn handler() -> Handler {
        Handler::new(Arc::new(SessionStore::new(StoreConfig::default())))
    }

    fn send(h: &Handler, line: &str) -> Json {
        Json::parse(&h.handle_line(line)).expect("responses are valid JSON")
    }

    /// Wraps a strategy and counts `choose` calls — observes whether the
    /// generation-keyed question cache short-circuits the strategy.
    struct Counting {
        calls: Arc<AtomicUsize>,
        inner: Box<dyn Strategy + Send>,
    }

    impl Strategy for Counting {
        fn name(&self) -> &'static str {
            "counting"
        }

        fn choose(&mut self, engine: &Engine, candidates: &CandidateView<'_>) -> Option<ProductId> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.inner.choose(engine, candidates)
        }
    }

    #[test]
    fn malformed_line_is_an_error_response() {
        let h = handler();
        let r = send(&h, "][");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn unknown_session_is_an_error_response() {
        let h = handler();
        let r = send(&h, r#"{"op":"NextQuestion","session":42}"#);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert!(r.get("error").unwrap().as_str().unwrap().contains("42"));
    }

    #[test]
    fn create_from_scenario_reports_shape() {
        let h = handler();
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"lookahead-minprune"}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("tuples").unwrap().as_u64(), Some(12));
        assert_eq!(r.get("atoms").unwrap().as_u64(), Some(6));
        assert_eq!(r.get("columns").unwrap().as_array().unwrap().len(), 5);
    }

    #[test]
    fn create_rejects_bad_inputs() {
        let h = handler();
        for (line, needle) in [
            (
                r#"{"op":"CreateSession","source":{"scenario":"nope"}}"#,
                "unknown scenario",
            ),
            (
                r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"nope"}"#,
                "unknown strategy",
            ),
            (
                r#"{"op":"CreateSession","source":{"relations":[{"name":"a","csv":"x\n1\n"}]},"max_product":0}"#,
                "must be positive",
            ),
            (
                r#"{"op":"CreateSession","source":{"relations":[{"name":"a","csv":"\"bad"}]}}"#,
                "relation `a`",
            ),
            (
                r#"{"op":"CreateSession","source":{"relations":[{"name":"a","csv":"x\n1\n"},{"name":"a","csv":"x\n1\n"}]}}"#,
                "twice",
            ),
            (
                r#"{"op":"CreateSession","source":{"relations":[{"name":"a","csv":"x\n1\n"}],"view":["b"]}}"#,
                "no relation",
            ),
        ] {
            let r = send(&h, line);
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(false), "{line}");
            assert!(
                r.get("error").unwrap().as_str().unwrap().contains(needle),
                "{line} -> {r}"
            );
        }
    }

    #[test]
    fn answer_without_pending_is_rejected() {
        let h = handler();
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
        );
        let id = r.get("session").unwrap().as_u64().unwrap();
        let r = send(
            &h,
            &format!(r#"{{"op":"Answer","session":{id},"label":"+"}}"#),
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn next_question_is_idempotent_until_answered() {
        let h = handler();
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"random:3"}"#,
        );
        let id = r.get("session").unwrap().as_u64().unwrap();
        let q1 = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        let q2 = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        assert_eq!(
            q1.get("tuple").unwrap().as_u64(),
            q2.get("tuple").unwrap().as_u64(),
            "a random strategy must not re-roll an unanswered question"
        );
    }

    #[test]
    fn oversized_product_opens_factorized_at_full_fidelity() {
        // Server ceiling of 100 tuples; the setgame scenario is 144.
        let h = Handler::with_limits(
            Arc::new(SessionStore::new(StoreConfig::default())),
            ServerLimits {
                max_product: 100,
                ..Default::default()
            },
        );
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"setgame"}}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r}");
        assert_eq!(r.get("sampled").unwrap().as_bool(), Some(false), "{r}");
        assert_eq!(r.get("factorized").unwrap().as_bool(), Some(true));
        assert_eq!(
            r.get("tuples").unwrap().as_u64(),
            Some(144),
            "full fidelity"
        );

        // A factorized session is fully usable: it asks questions and its
        // Stats carry the factorized marker.
        let id = r.get("session").unwrap().as_u64().unwrap();
        let q = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        assert_eq!(q.get("resolved").unwrap().as_bool(), Some(false), "{q}");
        let s = send(&h, &format!(r#"{{"op":"Stats","session":{id}}}"#));
        assert_eq!(s.get("factorized").unwrap().as_bool(), Some(true));
        assert_eq!(s.get("sampled").unwrap().as_bool(), Some(false));
        assert_eq!(s.get("total_tuples").unwrap().as_u64(), Some(144));

        // Metrics counted the session and its partition size.
        let m = send(&h, r#"{"op":"Metrics"}"#);
        let store = m.get("store").unwrap();
        assert_eq!(
            store.get("factorized_sessions").unwrap().as_u64(),
            Some(1),
            "{m}"
        );
        assert!(store.get("signature_groups").unwrap().as_u64().unwrap() >= 1);

        // Small products still enumerate exactly.
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
        );
        assert_eq!(r.get("sampled").unwrap().as_bool(), Some(false));
        assert_eq!(r.get("factorized").unwrap().as_bool(), Some(false));
        assert_eq!(r.get("tuples").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn force_sample_opts_back_into_sampling() {
        // Server ceiling of 100 tuples; the setgame scenario is 144.
        let h = Handler::with_limits(
            Arc::new(SessionStore::new(StoreConfig::default())),
            ServerLimits {
                max_product: 100,
                ..Default::default()
            },
        );
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"setgame"},"force_sample":true,"sample_seed":7}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r}");
        assert_eq!(r.get("sampled").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("factorized").unwrap().as_bool(), Some(false));
        assert_eq!(r.get("tuples").unwrap().as_u64(), Some(100));

        // A client max_product below the ceiling shrinks the sample; one
        // above it is clamped to the ceiling, never honored.
        for (requested, expect) in [(40u64, 40u64), (10_000, 100)] {
            let r = send(
                &h,
                &format!(
                    r#"{{"op":"CreateSession","source":{{"scenario":"setgame"}},"max_product":{requested},"force_sample":true}}"#
                ),
            );
            assert_eq!(r.get("sampled").unwrap().as_bool(), Some(true), "{r}");
            assert_eq!(r.get("tuples").unwrap().as_u64(), Some(expect), "{r}");
        }

        // A sampled session is fully usable: it asks questions and its
        // Stats carry the sampled marker.
        let id = r#"{"op":"CreateSession","source":{"scenario":"setgame"},"max_product":50,"force_sample":true}"#;
        let id = send(&h, id).get("session").unwrap().as_u64().unwrap();
        let q = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        assert_eq!(q.get("resolved").unwrap().as_bool(), Some(false), "{q}");
        let s = send(&h, &format!(r#"{{"op":"Stats","session":{id}}}"#));
        assert_eq!(s.get("sampled").unwrap().as_bool(), Some(true));
        assert_eq!(s.get("factorized").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn sample_seed_is_reproducible() {
        let h = Handler::with_limits(
            Arc::new(SessionStore::new(StoreConfig::default())),
            ServerLimits {
                max_product: 30,
                ..Default::default()
            },
        );
        let open = |seed: u64| {
            let r = send(
                &h,
                &format!(
                    r#"{{"op":"CreateSession","source":{{"scenario":"setgame"}},"force_sample":true,"sample_seed":{seed}}}"#
                ),
            );
            let id = r.get("session").unwrap().as_u64().unwrap();
            let q = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
            q.get("tuple").unwrap().as_u64().unwrap()
        };
        assert_eq!(open(3), open(3), "same seed, same sample, same question");
    }

    /// `choose` proposes the first candidate, `top_k` leads with the last —
    /// guarantees the two proposals differ on any multi-candidate instance.
    struct FirstChooseLastTopK;

    impl Strategy for FirstChooseLastTopK {
        fn name(&self) -> &'static str {
            "first-last"
        }

        fn choose(
            &mut self,
            _engine: &Engine,
            candidates: &CandidateView<'_>,
        ) -> Option<ProductId> {
            candidates.candidates().first().map(|c| c.representative)
        }

        fn top_k(
            &mut self,
            _engine: &Engine,
            candidates: &CandidateView<'_>,
            _k: usize,
        ) -> Vec<ProductId> {
            candidates
                .candidates()
                .last()
                .map(|c| c.representative)
                .into_iter()
                .collect()
        }
    }

    #[test]
    fn top_k_supersedes_the_cached_next_question() {
        // A NextQuestion answer is cached per generation; a TopK at the
        // same generation re-points `pending` at its batch head, and the
        // following NextQuestion must propose that head, not resurrect
        // the stale cached choice.
        let h = handler();
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
        );
        let id = r.get("session").unwrap().as_u64().unwrap();
        {
            let handle = h.store().peek(id).unwrap();
            handle.lock().unwrap().strategy = Box::new(FirstChooseLastTopK);
        }
        let q1 = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        let first = q1.get("tuple").unwrap().as_u64().unwrap();
        let batch = send(&h, &format!(r#"{{"op":"TopK","session":{id},"k":1}}"#));
        let head = batch.get("tuples").unwrap().as_array().unwrap()[0]
            .get("tuple")
            .unwrap()
            .as_u64()
            .unwrap();
        assert_ne!(first, head, "fixture must make the proposals differ");
        let q2 = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        assert_eq!(q2.get("tuple").unwrap().as_u64(), Some(head));
    }

    #[test]
    fn next_question_cache_is_keyed_on_generation() {
        let h = handler();
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
        );
        let id = r.get("session").unwrap().as_u64().unwrap();
        let calls = Arc::new(AtomicUsize::new(0));
        {
            let handle = h.store().peek(id).unwrap();
            handle.lock().unwrap().strategy = Box::new(Counting {
                calls: Arc::clone(&calls),
                inner: StrategyKind::LocalGeneral.build(),
            });
        }

        // Retried NextQuestions hit the cache: one strategy consultation.
        let q1 = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        let q2 = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        assert_eq!(
            q1.get("tuple").unwrap().as_u64(),
            q2.get("tuple").unwrap().as_u64()
        );
        assert_eq!(calls.load(Ordering::SeqCst), 1);

        // Answering bumps the engine generation: the cache is invalidated
        // and the next question is freshly computed.
        let a = send(
            &h,
            &format!(r#"{{"op":"Answer","session":{id},"label":"-"}}"#),
        );
        assert_eq!(a.get("ok").unwrap().as_bool(), Some(true), "{a}");
        assert_eq!(a.get("resolved").unwrap().as_bool(), Some(false), "{a}");
        send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        assert_eq!(calls.load(Ordering::SeqCst), 2);

        // And once recomputed, retries are cached again.
        send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn answer_batch_applies_atomically_and_invalidates_once() {
        let h = handler();
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
        );
        let id = r.get("session").unwrap().as_u64().unwrap();
        let q1 = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        let proposed = q1.get("tuple").unwrap().as_u64().unwrap();

        // A conflicting-duplicate batch is rejected atomically: no label
        // lands, and the cached pending question survives untouched.
        let r = send(
            &h,
            &format!(
                r#"{{"op":"AnswerBatch","session":{id},"labels":[{{"tuple":2,"label":"+"}},{{"tuple":2,"label":"-"}}]}}"#
            ),
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert!(r.get("error").unwrap().as_str().unwrap().contains("both"));
        let s = send(&h, &format!(r#"{{"op":"Stats","session":{id}}}"#));
        assert_eq!(s.get("interactions").unwrap().as_u64(), Some(0));
        let q2 = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        assert_eq!(q2.get("tuple").unwrap().as_u64(), Some(proposed));

        // The paper's three terminating labels as one batch: applied in a
        // single pass, resolving the session.
        let r = send(
            &h,
            &format!(
                r#"{{"op":"AnswerBatch","session":{id},"labels":[{{"tuple":2,"label":"+"}},{{"tuple":6,"label":"-"}},{{"tuple":7,"label":"-"}}]}}"#
            ),
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r}");
        assert_eq!(r.get("applied").unwrap().as_u64(), Some(3));
        assert_eq!(r.get("resolved").unwrap().as_bool(), Some(true));
        assert!(r
            .get("sql")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("r1.To = r2.City"));
        let s = send(&h, &format!(r#"{{"op":"Stats","session":{id}}}"#));
        assert_eq!(s.get("interactions").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn answer_batch_respects_the_server_cap() {
        let h = Handler::with_limits(
            Arc::new(SessionStore::new(StoreConfig::default())),
            ServerLimits {
                max_batch: 2,
                ..Default::default()
            },
        );
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
        );
        let id = r.get("session").unwrap().as_u64().unwrap();
        let r = send(
            &h,
            &format!(
                r#"{{"op":"AnswerBatch","session":{id},"labels":[{{"tuple":2,"label":"+"}},{{"tuple":6,"label":"-"}},{{"tuple":7,"label":"-"}}]}}"#
            ),
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert!(r.get("error").unwrap().as_str().unwrap().contains("cap"));
        // A batch within the cap goes through.
        let r = send(
            &h,
            &format!(
                r#"{{"op":"AnswerBatch","session":{id},"labels":[{{"tuple":2,"label":"+"}},{{"tuple":6,"label":"-"}}]}}"#
            ),
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r}");
        assert_eq!(r.get("applied").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn self_join_view_from_inline_csv() {
        let h = handler();
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"relations":[{"name":"h","csv":"City,Discount\nNYC,AA\nLille,AF\n"}],"view":["h","h"]}}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r}");
        assert_eq!(r.get("tuples").unwrap().as_u64(), Some(4));
    }
}
