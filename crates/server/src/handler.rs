//! Request dispatch: the transport-independent heart of the service.
//!
//! [`Handler::handle_line`] maps one wire line to one response line; the
//! TCP server, the REPL's offline mode and the integration tests all call
//! it. The handler holds the shared [`SessionStore`] and nothing else.

use crate::protocol::{error, ok, parse_strategy, Request, Source};
use crate::scenario;
use crate::store::{Session, SessionStore};
use jim_core::{explain, Engine, EngineOptions, StrategyKind, Transcript};
use jim_json::Json;
use jim_relation::{csv, Database, Product, ProductId};
use std::sync::Arc;

/// Dispatches decoded requests against the session store.
pub struct Handler {
    store: Arc<SessionStore>,
}

impl Handler {
    /// A handler over a shared store.
    pub fn new(store: Arc<SessionStore>) -> Self {
        Handler { store }
    }

    /// The shared store (the server's sweeper thread also holds it).
    pub fn store(&self) -> &Arc<SessionStore> {
        &self.store
    }

    /// One wire line in, one wire line out. Never panics on client input:
    /// malformed requests become `{"ok":false,...}` responses.
    pub fn handle_line(&self, line: &str) -> String {
        let response = match Request::parse(line) {
            Ok(request) => self.handle(request),
            Err(message) => error(message),
        };
        response.render()
    }

    /// Dispatch one decoded request.
    pub fn handle(&self, request: Request) -> Json {
        match request {
            Request::CreateSession {
                source,
                strategy,
                max_product,
            } => self.create_session(source, strategy, max_product),
            Request::NextQuestion { session } => self.with_session(session, Self::next_question),
            Request::TopK { session, k } => self.with_session(session, |s| Self::top_k(s, k)),
            Request::Answer {
                session,
                tuple,
                label,
            } => self.with_session(session, |s| Self::answer(s, tuple, label)),
            Request::Stats { session } => self.with_session(session, Self::stats),
            Request::Explain { session, tuple } => {
                self.with_session(session, |s| Self::explain_tuple(s, tuple))
            }
            Request::Sql { session } => self.with_session(session, Self::sql),
            Request::Transcript { session } => self.with_session(session, Self::transcript),
            Request::ListSessions => self.list_sessions(),
            Request::CloseSession { session } => {
                if self.store.remove(session) {
                    ok([("closed", Json::from(session))])
                } else {
                    error(format!("unknown session {session}"))
                }
            }
        }
    }

    fn with_session(&self, id: u64, f: impl FnOnce(&mut Session) -> Json) -> Json {
        match self.store.get(id) {
            Some(handle) => {
                let mut guard = handle.lock().expect("session lock");
                f(&mut guard)
            }
            None => error(format!("unknown session {id} (expired or never created)")),
        }
    }

    fn create_session(
        &self,
        source: Source,
        strategy: Option<String>,
        max_product: Option<u64>,
    ) -> Json {
        let product = match build_product(&source) {
            Ok(p) => p,
            Err(message) => return error(message),
        };
        let kind = match strategy.as_deref().map(parse_strategy) {
            None => StrategyKind::LookaheadMinPrune,
            Some(Ok(kind)) => kind,
            Some(Err(message)) => return error(message),
        };
        let mut options = EngineOptions::default();
        if let Some(limit) = max_product {
            // Clients may lower the product-size guard, never raise it:
            // the engine eagerly enumerates the product, so an unbounded
            // client-supplied limit would be a remote allocation bomb.
            options.max_product = limit.min(options.max_product);
        }
        let engine = match Engine::new(product, &options) {
            Ok(e) => e,
            Err(e) => return error(e.to_string()),
        };
        let columns = columns_of(&engine);
        let tuples = engine.stats().total_tuples;
        let atoms = engine.universe().len();
        let (session, evicted) = self.store.create(engine, kind.build(), kind.to_string());
        let id = session.lock().expect("session lock").id;
        let mut fields = vec![
            ("session", Json::from(id)),
            ("strategy", Json::from(kind.to_string())),
            ("tuples", Json::from(tuples)),
            ("atoms", Json::from(atoms)),
            ("columns", Json::Array(columns)),
        ];
        if let Some(evicted) = evicted {
            fields.push(("evicted", Json::from(evicted)));
        }
        ok(fields)
    }

    fn next_question(session: &mut Session) -> Json {
        // Re-propose a pending question that is still informative rather
        // than consulting the strategy again (idempotent retries; stable
        // under Random). A pending tuple that free-form answers meanwhile
        // labeled OR pruned must not be re-proposed — in particular, the
        // session may already be resolved.
        let pending = session
            .pending
            .filter(|&id| session.engine.is_informative(id).unwrap_or(false));
        let choice = match pending {
            Some(id) => Some(id),
            None => session.strategy.choose(&session.engine),
        };
        match choice {
            None => {
                session.pending = None;
                resolved_response(&session.engine)
            }
            Some(id) => {
                session.pending = Some(id);
                let mut fields = vec![("resolved", Json::Bool(false))];
                fields.extend(tuple_fields(&session.engine, id));
                fields.push((
                    "informative_remaining",
                    Json::from(session.engine.stats().informative),
                ));
                ok(fields)
            }
        }
    }

    fn top_k(session: &mut Session, k: usize) -> Json {
        let session = &mut *session;
        let batch = session.strategy.top_k(&session.engine, k);
        if batch.is_empty() {
            return resolved_response(&session.engine);
        }
        session.pending = Some(batch[0]);
        let tuples: Vec<Json> = batch
            .iter()
            .map(|&id| Json::object(tuple_fields(&session.engine, id)))
            .collect();
        ok([
            ("resolved", Json::Bool(false)),
            ("tuples", Json::Array(tuples)),
        ])
    }

    fn answer(session: &mut Session, tuple: Option<u64>, label: jim_core::Label) -> Json {
        let id = match tuple.map(ProductId).or(session.pending) {
            Some(id) => id,
            None => {
                return error("no pending question; ask NextQuestion first or pass a `tuple` rank")
            }
        };
        match session.engine.label(id, label) {
            Err(e) => error(e.to_string()),
            Ok(outcome) => {
                if session.pending == Some(id) {
                    session.pending = None;
                }
                let mut fields = vec![
                    ("tuple", Json::from(id.0)),
                    ("label", Json::from(label.to_string())),
                    ("was_informative", Json::Bool(outcome.was_informative)),
                    ("pruned", Json::from(outcome.pruned)),
                    (
                        "informative_remaining",
                        Json::from(outcome.informative_remaining),
                    ),
                    ("resolved", Json::Bool(outcome.resolved)),
                ];
                if outcome.resolved {
                    let predicate = session.engine.result();
                    fields.push(("predicate", Json::from(predicate.to_string())));
                    fields.push(("sql", Json::from(predicate.to_sql())));
                }
                ok(fields)
            }
        }
    }

    fn stats(session: &mut Session) -> Json {
        let stats = session.engine.stats();
        ok([
            ("total_tuples", Json::from(stats.total_tuples)),
            ("labeled_positive", Json::from(stats.labeled_positive)),
            ("labeled_negative", Json::from(stats.labeled_negative)),
            ("pruned", Json::from(stats.pruned)),
            ("informative", Json::from(stats.informative)),
            ("interactions", Json::from(stats.interactions())),
            (
                "wasted_interactions",
                Json::from(stats.wasted_interactions()),
            ),
            ("resolved_fraction", Json::from(stats.resolved_fraction())),
            ("resolved", Json::Bool(session.engine.is_resolved())),
            ("strategy", Json::from(session.strategy_name.as_str())),
            ("summary", Json::from(stats.to_string())),
        ])
    }

    fn explain_tuple(session: &mut Session, tuple: Option<u64>) -> Json {
        let id = match tuple.map(ProductId).or(session.pending) {
            Some(id) => id,
            None => return error("pass a `tuple` rank or ask NextQuestion first"),
        };
        let class = match session.engine.classify(id) {
            Ok(class) => class,
            Err(e) => return error(e.to_string()),
        };
        match explain(&session.engine, id) {
            Err(e) => error(e.to_string()),
            Ok(explanation) => ok([
                ("tuple", Json::from(id.0)),
                ("class", Json::from(format!("{class:?}"))),
                ("explanation", Json::from(explanation.to_string())),
            ]),
        }
    }

    fn sql(session: &mut Session) -> Json {
        let predicate = session.engine.result();
        ok([
            ("resolved", Json::Bool(session.engine.is_resolved())),
            ("predicate", Json::from(predicate.to_string())),
            ("sql", Json::from(predicate.to_sql())),
            ("gav", Json::from(predicate.to_gav("Inferred"))),
        ])
    }

    fn transcript(session: &mut Session) -> Json {
        let transcript = Transcript::capture(&session.engine);
        ok([
            ("transcript", transcript.to_json()),
            ("text", Json::from(transcript.to_string())),
        ])
    }

    fn list_sessions(&self) -> Json {
        let sessions: Vec<Json> = self
            .store
            .ids()
            .into_iter()
            .filter_map(|id| {
                // peek, not get: listing sessions must not refresh their
                // TTL/LRU stamps, or a monitoring poller keeps every
                // abandoned session alive forever.
                let handle = self.store.peek(id)?;
                let guard: std::sync::MutexGuard<'_, Session> =
                    handle.lock().expect("session lock");
                Some(Json::object([
                    ("session", Json::from(id)),
                    ("strategy", Json::from(guard.strategy_name.as_str())),
                    ("tuples", Json::from(guard.engine.stats().total_tuples)),
                    (
                        "interactions",
                        Json::from(guard.engine.stats().interactions()),
                    ),
                    ("resolved", Json::Bool(guard.engine.is_resolved())),
                ]))
            })
            .collect();
        ok([("sessions", Json::Array(sessions))])
    }
}

/// `{resolved:true}` plus the inferred query.
fn resolved_response(engine: &Engine) -> Json {
    let predicate = engine.result();
    ok([
        ("resolved", Json::Bool(true)),
        ("predicate", Json::from(predicate.to_string())),
        ("sql", Json::from(predicate.to_sql())),
    ])
}

/// `tuple` + rendered `values` fields for one candidate.
fn tuple_fields(engine: &Engine, id: ProductId) -> Vec<(&'static str, Json)> {
    let values = match engine.product().tuple(id) {
        Ok(tuple) => tuple
            .values()
            .iter()
            .map(|v| Json::from(v.to_string()))
            .collect(),
        Err(_) => Vec::new(),
    };
    vec![("tuple", Json::from(id.0)), ("values", Json::Array(values))]
}

/// Qualified column names of the product schema.
fn columns_of(engine: &Engine) -> Vec<Json> {
    let schema = engine.product().schema();
    schema
        .attrs()
        .map(|ga| {
            Json::from(
                schema
                    .qualified_name(ga)
                    .expect("attr enumerated from schema"),
            )
        })
        .collect()
}

fn build_product(source: &Source) -> Result<Product, String> {
    match source {
        Source::Scenario { name } => scenario::product(name),
        Source::Inline { relations, view } => {
            if relations.is_empty() {
                return Err("`relations` must not be empty".into());
            }
            // The catalog does the bookkeeping (duplicate names, name
            // lookup, shared Arc handles); this arm only parses CSV.
            let mut db = Database::new();
            for (name, text) in relations {
                let relation = csv::read_relation(name.clone(), text)
                    .map_err(|e| format!("relation `{name}`: {e}"))?;
                db.add(relation).map_err(|e| e.to_string())?;
            }
            let names: Vec<&str> = match view {
                None => relations.iter().map(|(name, _)| name.as_str()).collect(),
                Some(names) => {
                    if names.is_empty() {
                        return Err("`view` must not be empty".into());
                    }
                    names.iter().map(String::as_str).collect()
                }
            };
            let (occurrences, _) = db.join_view(&names).map_err(|e| e.to_string())?;
            Product::new(occurrences).map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    fn handler() -> Handler {
        Handler::new(Arc::new(SessionStore::new(StoreConfig::default())))
    }

    fn send(h: &Handler, line: &str) -> Json {
        Json::parse(&h.handle_line(line)).expect("responses are valid JSON")
    }

    #[test]
    fn malformed_line_is_an_error_response() {
        let h = handler();
        let r = send(&h, "][");
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn unknown_session_is_an_error_response() {
        let h = handler();
        let r = send(&h, r#"{"op":"NextQuestion","session":42}"#);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert!(r.get("error").unwrap().as_str().unwrap().contains("42"));
    }

    #[test]
    fn create_from_scenario_reports_shape() {
        let h = handler();
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"lookahead-minprune"}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("tuples").unwrap().as_u64(), Some(12));
        assert_eq!(r.get("atoms").unwrap().as_u64(), Some(6));
        assert_eq!(r.get("columns").unwrap().as_array().unwrap().len(), 5);
    }

    #[test]
    fn create_rejects_bad_inputs() {
        let h = handler();
        for (line, needle) in [
            (
                r#"{"op":"CreateSession","source":{"scenario":"nope"}}"#,
                "unknown scenario",
            ),
            (
                r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"nope"}"#,
                "unknown strategy",
            ),
            (
                r#"{"op":"CreateSession","source":{"relations":[{"name":"a","csv":"x\n1\n"}]},"max_product":0}"#,
                "above the limit",
            ),
            (
                r#"{"op":"CreateSession","source":{"relations":[{"name":"a","csv":"\"bad"}]}}"#,
                "relation `a`",
            ),
            (
                r#"{"op":"CreateSession","source":{"relations":[{"name":"a","csv":"x\n1\n"},{"name":"a","csv":"x\n1\n"}]}}"#,
                "twice",
            ),
            (
                r#"{"op":"CreateSession","source":{"relations":[{"name":"a","csv":"x\n1\n"}],"view":["b"]}}"#,
                "no relation",
            ),
        ] {
            let r = send(&h, line);
            assert_eq!(r.get("ok").unwrap().as_bool(), Some(false), "{line}");
            assert!(
                r.get("error").unwrap().as_str().unwrap().contains(needle),
                "{line} -> {r}"
            );
        }
    }

    #[test]
    fn answer_without_pending_is_rejected() {
        let h = handler();
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
        );
        let id = r.get("session").unwrap().as_u64().unwrap();
        let r = send(
            &h,
            &format!(r#"{{"op":"Answer","session":{id},"label":"+"}}"#),
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn next_question_is_idempotent_until_answered() {
        let h = handler();
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"random:3"}"#,
        );
        let id = r.get("session").unwrap().as_u64().unwrap();
        let q1 = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        let q2 = send(&h, &format!(r#"{{"op":"NextQuestion","session":{id}}}"#));
        assert_eq!(
            q1.get("tuple").unwrap().as_u64(),
            q2.get("tuple").unwrap().as_u64(),
            "a random strategy must not re-roll an unanswered question"
        );
    }

    #[test]
    fn self_join_view_from_inline_csv() {
        let h = handler();
        let r = send(
            &h,
            r#"{"op":"CreateSession","source":{"relations":[{"name":"h","csv":"City,Discount\nNYC,AA\nLille,AF\n"}],"view":["h","h"]}}"#,
        );
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r}");
        assert_eq!(r.get("tuples").unwrap().as_u64(), Some(4));
    }
}
