//! Poison-recovering lock acquisition for the server's infrastructure
//! mutexes.
//!
//! `std`'s mutex poisoning turns one panicked request into a cascading
//! outage: every later `.lock().expect(..)` on the same mutex panics
//! too, taking down unrelated connections. For the server's
//! *infrastructure* state — job queues, completion buffers, reactor
//! inboxes, per-ip counts, shutdown flags, metrics registries — the
//! data under the lock is a plain collection that is never left
//! half-updated across an await of user code, so recovering the guard
//! is strictly better than propagating the panic. (Session engine
//! state is the exception and is handled separately: a poisoned
//! session is *shed*, not recovered — see `Handler::with_session`.)
//!
//! The method is named `lock_unpoisoned` (not a free helper) so lock
//! acquisitions keep the `receiver.method()` shape that `jim-lint`'s
//! lock-order rule keys on: `self.state.lock_unpoisoned()` still names
//! the mutex field at the call site.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

pub(crate) trait LockExt<T> {
    /// Acquire, recovering the guard from a poisoned mutex.
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|e| e.into_inner())
    }
}

pub(crate) trait CondvarExt {
    /// `Condvar::wait`, recovering the guard from a poisoned mutex.
    fn wait_unpoisoned<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T>;

    /// `Condvar::wait_timeout`, recovering the guard from a poisoned
    /// mutex; the timeout flag is dropped because every caller loops on
    /// its own deadline predicate anyway.
    fn wait_timeout_unpoisoned<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> MutexGuard<'a, T>;
}

impl CondvarExt for Condvar {
    fn wait_unpoisoned<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    fn wait_timeout_unpoisoned<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> MutexGuard<'a, T> {
        match self.wait_timeout(guard, timeout) {
            Ok((g, _)) => g,
            Err(e) => e.into_inner().0,
        }
    }
}
