//! The write-ahead transcript journal: sessions that outlive the process.
//!
//! A session's whole state is determined by two things the wire already
//! speaks — its **origin** (where the relations came from, which strategy,
//! which sampling knobs; [`SessionOrigin`]) and its **label log**. This
//! module persists exactly those, as one append-only JSON-lines file per
//! session under the store's data directory:
//!
//! ```text
//! {"jim-journal":1,"session":7,"origin":{"source":{"scenario":"flights"},…}}
//! {"labels":[{"tuple":2,"label":"+"}]}
//! {"labels":[{"tuple":6,"label":"-"},{"tuple":7,"label":"-"}]}
//! ```
//!
//! The header is written when the session is created; **one line per
//! applied label batch** is appended *after* the engine accepts the batch
//! (an `Answer` is a 1-label batch), so the journal never records a
//! rejected label. Because the journal is written ahead of every ack,
//! eviction needs no write at all: dropping a session from memory loses
//! nothing, and [`JournalStore::load`] + [`StoredSession::rebuild_engine`]
//! reconstruct the identical engine by replaying the recorded batches —
//! one [`jim_core::Engine::label_batch`] pass per batch, reproducing the
//! live session's exact state trajectory (stats and interaction log
//! included).
//!
//! **Durability caveat:** appends are flushed to the OS (`write` + close)
//! but not fsynced — a kernel crash can lose the tail. A torn trailing
//! line (partial write at process death) is tolerated on load: it is
//! skipped with a logged warning and the session resumes at the previous
//! batch boundary. A corrupt line *before* the tail is not a torn write
//! and fails the load — replaying past a hole would silently diverge from
//! the session the user actually had.

use crate::protocol::parse_strategy;
use crate::scenario;
use jim_core::{
    Engine, EngineOptions, Label, OriginSource, SessionOrigin, Strategy, StrategyKind, Transcript,
};
use jim_json::Json;
use jim_relation::{csv, Database, Product, ProductId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Journal format version written in headers.
const JOURNAL_VERSION: u64 = 1;

/// A loaded journal: the origin plus the applied batches, ready to
/// rebuild the session.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSession {
    /// The session id the journal belongs to.
    pub id: u64,
    /// Provenance for rebuilding the engine from nothing.
    pub origin: SessionOrigin,
    /// The label batches, in application order.
    pub batches: Vec<Vec<(ProductId, Label)>>,
}

impl StoredSession {
    /// Total labels across all batches (= the session's interactions).
    pub fn interactions(&self) -> u64 {
        self.batches.iter().map(|b| b.len() as u64).sum()
    }

    /// Rebuild the engine: construct the instance from the origin and
    /// replay every recorded batch with one `label_batch` pass each —
    /// the exact state trajectory the live session took.
    pub fn rebuild_engine(&self) -> Result<Engine, String> {
        let mut engine = build_engine(&self.origin)?;
        for (i, batch) in self.batches.iter().enumerate() {
            engine
                .label_batch(batch)
                .map_err(|e| format!("journal batch {} does not replay: {e}", i + 1))?;
        }
        Ok(engine)
    }

    /// Build the strategy recorded in the origin (fresh state — RNG-based
    /// strategies restart from their seed).
    pub fn rebuild_strategy(&self) -> Result<(Box<dyn Strategy + Send>, String), String> {
        let kind = strategy_kind(&self.origin)?;
        Ok((kind.build(), kind.to_string()))
    }

    /// Every recorded label, flattened in application order.
    pub fn labels(&self) -> Vec<(ProductId, Label)> {
        self.batches.iter().flatten().copied().collect()
    }
}

/// Resolve the origin's strategy string (`None` = server default).
pub fn strategy_kind(origin: &SessionOrigin) -> Result<StrategyKind, String> {
    match origin.strategy.as_deref() {
        None => Ok(StrategyKind::LookaheadMinPrune),
        Some(name) => parse_strategy(name),
    }
}

/// Build the product for an origin's data source (also the `CreateSession`
/// path — creation and resume share one builder, so an origin that built
/// once always rebuilds).
pub fn build_product(source: &OriginSource) -> Result<Product, String> {
    match source {
        OriginSource::Scenario { name } => scenario::product(name),
        OriginSource::Inline { relations, view } => {
            if relations.is_empty() {
                return Err("`relations` must not be empty".into());
            }
            // The catalog does the bookkeeping (duplicate names, name
            // lookup, shared Arc handles); this arm only parses CSV.
            let mut db = Database::new();
            for (name, text) in relations {
                let relation = csv::read_relation(name.clone(), text)
                    .map_err(|e| format!("relation `{name}`: {e}"))?;
                db.add(relation).map_err(|e| e.to_string())?;
            }
            let names: Vec<&str> = match view {
                None => relations.iter().map(|(name, _)| name.as_str()).collect(),
                Some(names) => {
                    if names.is_empty() {
                        return Err("`view` must not be empty".into());
                    }
                    names.iter().map(String::as_str).collect()
                }
            };
            let (occurrences, _) = db.join_view(&names).map_err(|e| e.to_string())?;
            Product::new(occurrences).map_err(|e| e.to_string())
        }
    }
}

/// Build a fresh (unlabeled) engine exactly as the origin records it:
/// same product, same effective limit, same sample (the seed is recorded,
/// so a sampled session re-draws identical ids).
pub fn build_engine(origin: &SessionOrigin) -> Result<Engine, String> {
    let product = build_product(&origin.source)?;
    engine_from_product(product, origin)
}

/// [`build_engine`] over an already-built product (the create path has
/// one in hand for the size check).
pub fn engine_from_product(product: Product, origin: &SessionOrigin) -> Result<Engine, String> {
    let options = EngineOptions {
        max_product: origin.max_product,
        ..Default::default()
    };
    let built = if origin.factorized {
        // Factorized construction covers the whole product exactly, so a
        // resume needs no sample seed — the partition is deterministic.
        Engine::from_factorized(product, &options)
    } else if origin.sampled {
        let mut rng = StdRng::seed_from_u64(origin.sample_seed);
        let ids = product.sample(&mut rng, origin.max_product as usize);
        Engine::from_ids(product, &ids, &options)
    } else {
        Engine::new(product, &options)
    };
    built.map_err(|e| e.to_string())
}

/// The on-disk journal directory: one `session-<id>.jsonl` per session.
#[derive(Debug)]
pub struct JournalStore {
    root: PathBuf,
}

impl JournalStore {
    /// Open (creating if needed) a journal directory.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<JournalStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(JournalStore { root })
    }

    /// The directory journals live in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The journal file of one session.
    pub fn path(&self, id: u64) -> PathBuf {
        self.root.join(format!("session-{id}.jsonl"))
    }

    /// Write a fresh journal containing only the header (origin) line.
    /// Returns the bytes written (newline included) so callers can
    /// account journal growth.
    pub fn create(&self, id: u64, origin: &SessionOrigin) -> std::io::Result<usize> {
        let header = Json::object([
            ("jim-journal", Json::from(JOURNAL_VERSION)),
            ("session", Json::from(id)),
            ("origin", origin.to_json()),
        ]);
        let line = format!("{}\n", header.render());
        let mut file = File::create(self.path(id))?;
        file.write_all(line.as_bytes())?;
        Ok(line.len())
    }

    /// Append one applied label batch. Called *after* the engine accepted
    /// the batch and *before* the response is acked, under the session
    /// lock — so journal order equals application order. Returns the
    /// bytes appended (newline included).
    pub fn append(&self, id: u64, labels: &[(ProductId, Label)]) -> std::io::Result<usize> {
        let line = Json::object([("labels", Transcript::labels_to_json(labels))]);
        let line = format!("{}\n", line.render());
        let mut file = OpenOptions::new().append(true).open(self.path(id))?;
        // One write call per line: the OS appends atomically enough that
        // a crash leaves at most one torn trailing line, which `load`
        // tolerates.
        file.write_all(line.as_bytes())?;
        Ok(line.len())
    }

    /// Whether a journal exists for this session id.
    pub fn contains(&self, id: u64) -> bool {
        self.path(id).is_file()
    }

    /// Delete a session's journal; `true` if it existed.
    pub fn delete(&self, id: u64) -> bool {
        fs::remove_file(self.path(id)).is_ok()
    }

    /// Session ids with a journal on disk, ascending.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = match fs::read_dir(&self.root) {
            Err(_) => Vec::new(),
            Ok(entries) => entries
                .filter_map(|e| {
                    let name = e.ok()?.file_name();
                    let name = name.to_str()?;
                    name.strip_prefix("session-")?
                        .strip_suffix(".jsonl")?
                        .parse()
                        .ok()
                })
                .collect(),
        };
        ids.sort_unstable();
        ids
    }

    /// The largest session id on disk (0 when empty) — a fresh store over
    /// an existing directory allocates ids past it, so restarts never
    /// collide with resumable sessions.
    pub fn max_id(&self) -> u64 {
        self.ids().last().copied().unwrap_or(0)
    }

    /// The origin and recorded-label count of a session, **without**
    /// materializing its batches: only the header line is JSON-parsed;
    /// labels are counted by scanning the batch lines for their `"tuple"`
    /// keys (the writer is ours, so the count is exact for well-formed
    /// journals). `ListSessions` calls this per on-disk session — a
    /// listing must stay a scan, not a decode, of every journal.
    pub fn peek_meta(&self, id: u64) -> Result<Option<(SessionOrigin, u64)>, String> {
        let text = match fs::read_to_string(self.path(id)) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("journal for session {id}: {e}")),
            Ok(text) => text,
        };
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| format!("journal for session {id} is empty"))?;
        let header =
            Json::parse(header).map_err(|e| format!("journal header for session {id}: {e}"))?;
        let origin = header
            .get("origin")
            .ok_or_else(|| format!("journal header for session {id} has no origin"))?;
        let origin = SessionOrigin::from_json(origin)
            .map_err(|e| format!("journal origin for session {id}: {e}"))?;
        let labels = lines
            .map(|line| line.matches("\"tuple\":").count() as u64)
            .sum();
        Ok(Some((origin, labels)))
    }

    /// Load a session's journal. `Ok(None)` when no journal exists;
    /// `Err` when the header is unreadable or a non-trailing line is
    /// corrupt. A truncated **trailing** line is a torn write — only
    /// possible on the last line, and only when the file does not end in
    /// a newline (every append writes its `\n` in the same call): it is
    /// skipped with a logged warning and the load succeeds with the
    /// batches up to it. An unparseable *newline-terminated* last line
    /// cannot be a torn append (bit rot, outside editing) and fails the
    /// load like any other hole — replaying past it would silently
    /// diverge from the session the user actually had.
    pub fn load(&self, id: u64) -> Result<Option<StoredSession>, String> {
        let text = match fs::read_to_string(self.path(id)) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("journal for session {id}: {e}")),
            Ok(text) => text,
        };
        let torn_tail_possible = !text.ends_with('\n');
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| format!("journal for session {id} is empty"))?;
        let header =
            Json::parse(header).map_err(|e| format!("journal header for session {id}: {e}"))?;
        match header.get("jim-journal").and_then(Json::as_u64) {
            Some(JOURNAL_VERSION) => {}
            other => {
                return Err(format!(
                    "journal for session {id}: unsupported version {other:?}"
                ))
            }
        }
        let origin = header
            .get("origin")
            .ok_or_else(|| format!("journal header for session {id} has no origin"))?;
        let origin = SessionOrigin::from_json(origin)
            .map_err(|e| format!("journal origin for session {id}: {e}"))?;

        let rest: Vec<&str> = lines.collect();
        let last = rest.len();
        let mut batches = Vec::with_capacity(rest.len());
        for (i, line) in rest.into_iter().enumerate() {
            let parsed = Json::parse(line)
                .ok()
                .and_then(|json| Transcript::labels_from_json(json.get("labels")?).ok());
            match parsed {
                Some(labels) => batches.push(labels),
                None if i + 1 == last && torn_tail_possible => {
                    // Torn write: the process died mid-append. The batch
                    // was never fully journaled, so resuming one batch
                    // short is the correct state.
                    eprintln!(
                        "jim-server: journal for session {id}: skipping torn trailing line \
                         (batch {} of {last})",
                        i + 1
                    );
                }
                None => {
                    return Err(format!(
                        "journal for session {id}: corrupt batch line {} of {last} \
                         (not a torn write; refusing to replay past a hole)",
                        i + 1
                    ));
                }
            }
        }
        Ok(Some(StoredSession {
            id,
            origin,
            batches,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_core::OriginSource;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jim-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn flights_origin() -> SessionOrigin {
        SessionOrigin {
            source: OriginSource::Scenario {
                name: "flights".into(),
            },
            strategy: Some("lookahead-minprune".into()),
            max_product: 5_000_000,
            sample_seed: 0,
            sampled: false,
            factorized: false,
        }
    }

    #[test]
    fn journal_round_trip_rebuilds_the_engine() {
        let store = JournalStore::open(tmpdir("roundtrip")).unwrap();
        let origin = flights_origin();
        store.create(7, &origin).unwrap();
        store.append(7, &[(ProductId(2), Label::Positive)]).unwrap();
        store
            .append(
                7,
                &[
                    (ProductId(6), Label::Negative),
                    (ProductId(7), Label::Negative),
                ],
            )
            .unwrap();

        assert!(store.contains(7));
        assert_eq!(store.ids(), vec![7]);
        assert_eq!(store.max_id(), 7);

        let stored = store.load(7).unwrap().unwrap();
        assert_eq!(stored.origin, origin);
        assert_eq!(stored.batches.len(), 2);
        assert_eq!(stored.interactions(), 3);

        // The rebuilt engine is the resolved paper walkthrough, with the
        // exact per-batch trajectory (generation = number of batches).
        let engine = stored.rebuild_engine().unwrap();
        assert!(engine.is_resolved());
        assert_eq!(engine.generation(), 2);
        assert_eq!(engine.stats().interactions(), 3);
        let (_, name) = stored.rebuild_strategy().unwrap();
        assert_eq!(name, "lookahead-minprune");

        assert!(store.delete(7));
        assert!(!store.delete(7));
        assert_eq!(store.load(7).unwrap(), None);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn torn_trailing_line_is_skipped_with_a_warning() {
        let store = JournalStore::open(tmpdir("torn")).unwrap();
        store.create(3, &flights_origin()).unwrap();
        store.append(3, &[(ProductId(2), Label::Positive)]).unwrap();
        store.append(3, &[(ProductId(6), Label::Negative)]).unwrap();

        // Truncate the file mid-way through the last line.
        let path = store.path(3);
        let text = fs::read_to_string(&path).unwrap();
        let cut = text.trim_end().len() - 10;
        fs::write(&path, &text[..cut]).unwrap();

        let stored = store.load(3).unwrap().unwrap();
        assert_eq!(stored.batches, vec![vec![(ProductId(2), Label::Positive)]]);
        let engine = stored.rebuild_engine().unwrap();
        assert_eq!(engine.stats().interactions(), 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn newline_terminated_corrupt_tail_is_a_hole_not_a_torn_write() {
        // A complete (newline-terminated) but unparseable last line cannot
        // be a torn append — it must fail the load, not be skipped.
        let store = JournalStore::open(tmpdir("bitrot")).unwrap();
        store.create(6, &flights_origin()).unwrap();
        store.append(6, &[(ProductId(2), Label::Positive)]).unwrap();
        let path = store.path(6);
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"labels\":[{\"tup\n");
        fs::write(&path, text).unwrap();
        let err = store.load(6).unwrap_err();
        assert!(err.contains("corrupt batch line 2"), "{err}");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn peek_meta_counts_labels_without_decoding_batches() {
        let store = JournalStore::open(tmpdir("meta")).unwrap();
        let origin = flights_origin();
        store.create(8, &origin).unwrap();
        assert_eq!(store.peek_meta(8).unwrap(), Some((origin.clone(), 0)));
        store.append(8, &[(ProductId(2), Label::Positive)]).unwrap();
        store
            .append(
                8,
                &[
                    (ProductId(6), Label::Negative),
                    (ProductId(7), Label::Negative),
                ],
            )
            .unwrap();
        assert_eq!(store.peek_meta(8).unwrap(), Some((origin, 3)));
        assert_eq!(store.peek_meta(99).unwrap(), None);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_middle_line_fails_the_load() {
        let store = JournalStore::open(tmpdir("hole")).unwrap();
        store.create(4, &flights_origin()).unwrap();
        store.append(4, &[(ProductId(2), Label::Positive)]).unwrap();
        store.append(4, &[(ProductId(6), Label::Negative)]).unwrap();

        // Corrupt the *first* batch line: that is a hole, not a torn tail.
        let path = store.path(4);
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = r#"{"labels":[{"tup"#;
        fs::write(&path, lines.join("\n")).unwrap();

        let err = store.load(4).unwrap_err();
        assert!(err.contains("corrupt batch line 1"), "{err}");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn missing_or_broken_headers_are_errors() {
        let store = JournalStore::open(tmpdir("header")).unwrap();
        assert_eq!(store.load(99).unwrap(), None);

        fs::write(store.path(1), "").unwrap();
        assert!(store.load(1).unwrap_err().contains("empty"));
        fs::write(store.path(2), "not json\n").unwrap();
        assert!(store.load(2).unwrap_err().contains("header"));
        fs::write(store.path(5), "{\"jim-journal\":9}\n").unwrap();
        assert!(store.load(5).unwrap_err().contains("version"));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn sampled_origin_rebuilds_the_identical_sample() {
        let origin = SessionOrigin {
            source: OriginSource::Scenario {
                name: "setgame".into(),
            },
            strategy: None,
            max_product: 40,
            sample_seed: 7,
            sampled: true,
            factorized: false,
        };
        let a = build_engine(&origin).unwrap();
        let b = build_engine(&origin).unwrap();
        assert_eq!(a.stats().total_tuples, 40);
        assert_eq!(a.visible_ids(false), b.visible_ids(false));
    }

    #[test]
    fn factorized_origin_rebuilds_the_identical_engine() {
        // A factorized origin covers the whole 144-tuple setgame product
        // even though max_product is far below it — full fidelity, and a
        // deterministic rebuild (no sample seed involved).
        let origin = SessionOrigin {
            source: OriginSource::Scenario {
                name: "setgame".into(),
            },
            strategy: None,
            max_product: 40,
            sample_seed: 0,
            sampled: false,
            factorized: true,
        };
        let a = build_engine(&origin).unwrap();
        let b = build_engine(&origin).unwrap();
        assert!(a.is_factorized());
        assert_eq!(a.stats().total_tuples, 144);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.visible_ids(false), b.visible_ids(false));
    }
}
