//! Named `jim-synth` scenarios a client can open without shipping data.

use jim_relation::{IntoSharedRelation, Product, RelationError};
use jim_synth::{flights, random_db, setgame, social, tpch};

/// Build the product for a named scenario.
///
/// * `flights` — the paper's Figure 1 instance (4 flights × 3 hotels).
/// * `setgame` — a 12-card Set subdeck self-joined (Figure 5's "joining
///   sets of pictures", kept small enough for interactive play).
/// * `tpch` — a tiny TPC-H-shaped customer × orders instance.
/// * `random` — a seeded random 2-relation instance (domain 3).
/// * `social` — a `follows(src, dst)` graph self-joined: multi-hop
///   (follows-of-follows) and cyclic (mutual-follow) join goals live on
///   this one (see `jim_synth::social`).
pub fn product(name: &str) -> Result<Product, String> {
    let build = |rels: Vec<jim_relation::Relation>| {
        Product::new(rels).map_err(|e: RelationError| e.to_string())
    };
    match name {
        "flights" => build(vec![flights::flights(), flights::hotels()]),
        "setgame" => {
            let deck = setgame::subdeck(12, 5);
            let shared = deck.into_shared();
            Product::new(vec![shared.clone(), shared]).map_err(|e| e.to_string())
        }
        "tpch" => {
            let db = tpch::generate(tpch::TpchConfig {
                scale: 0.25,
                seed: 7,
            });
            let (rels, _) = db
                .join_view(&["customer", "orders"])
                .map_err(|e| e.to_string())?;
            Product::new(rels).map_err(|e| e.to_string())
        }
        "random" => {
            let db = random_db::generate(&random_db::RandomDbConfig::uniform(2, 3, 8, 3, 11));
            let (rels, _) = db.join_view(&["r1", "r2"]).map_err(|e| e.to_string())?;
            Product::new(rels).map_err(|e| e.to_string())
        }
        "social" => {
            let graph = social::default_follows().into_shared();
            Product::new(vec![graph.clone(), graph]).map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown scenario `{other}`; available: flights, setgame, tpch, random, social"
        )),
    }
}

/// The scenario names [`product`] accepts.
pub const NAMES: &[&str] = &["flights", "setgame", "tpch", "random", "social"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_scenario_builds() {
        for name in NAMES {
            let p = product(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(p.size() > 0, "{name} is empty");
        }
    }

    #[test]
    fn flights_is_the_paper_instance() {
        assert_eq!(product("flights").unwrap().size(), 12);
    }

    #[test]
    fn setgame_shares_the_deck_allocation() {
        let p = product("setgame").unwrap();
        let rels = p.relations();
        assert!(std::sync::Arc::ptr_eq(&rels[0], &rels[1]));
    }

    #[test]
    fn unknown_scenario_lists_options() {
        let err = product("nope").unwrap_err();
        assert!(err.contains("flights"));
    }
}
