//! The JSON-lines wire protocol.
//!
//! Every request is one JSON object on one line, tagged by `"op"`; every
//! response is one JSON object on one line with an `"ok"` boolean. The
//! protocol is deliberately transport-agnostic: `serve` speaks it over TCP,
//! tests speak it over an in-memory handler, and a future async backend can
//! reuse it verbatim.
//!
//! ## Requests
//!
//! ```json
//! {"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}
//! {"op":"CreateSession","source":{"relations":[{"name":"flights","csv":"From,To\n..."}]}}
//! {"op":"CreateSession","source":{"scenario":"setgame"},"max_product":1000}
//! {"op":"CreateSession","source":{"scenario":"setgame"},"max_product":1000,"force_sample":true,"sample_seed":7}
//! {"op":"NextQuestion","session":1}
//! {"op":"TopK","session":1,"k":3}
//! {"op":"Answer","session":1,"label":"+"}
//! {"op":"Answer","session":1,"tuple":11,"label":"-"}
//! {"op":"AnswerBatch","session":1,"labels":[{"tuple":2,"label":"+"},{"tuple":6,"label":"-"}]}
//! {"op":"Stats","session":1}
//! {"op":"Explain","session":1,"tuple":4}
//! {"op":"Sql","session":1}
//! {"op":"Transcript","session":1}
//! {"op":"ResumeSession","session":1}
//! {"op":"ListSessions"}
//! {"op":"CloseSession","session":1}
//! {"op":"Metrics"}
//! ```

use jim_core::{Label, StrategyKind};
use jim_json::Json;

/// Where a session's relations come from: inline CSV text (with an
/// optional join view; repeats allowed for self-joins) or a named
/// `jim-synth` scenario (`flights`, `setgame`, `tpch`, `random`,
/// `social`).
///
/// This is the same type the durable-session provenance
/// ([`jim_core::SessionOrigin`]) carries, so what a client sent at
/// `CreateSession` time is byte-for-byte what a resume rebuilds from.
pub use jim_core::OriginSource as Source;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session over a data source with an optional strategy choice.
    CreateSession {
        /// The data to infer over.
        source: Source,
        /// Strategy name (see [`parse_strategy`]); default lookahead-minprune.
        strategy: Option<String>,
        /// Enumerate at most this many product tuples (clamped to the
        /// server ceiling); larger products open through *factorized*
        /// construction at full fidelity (falling back to a uniform
        /// sample if factorization exceeds its sweep budget).
        max_product: Option<u64>,
        /// RNG seed for the product sample (default 0, reproducible).
        sample_seed: Option<u64>,
        /// Skip factorized construction for oversized products and sample
        /// straight away (the pre-factorization behavior, now explicit
        /// opt-in).
        force_sample: bool,
    },
    /// Ask for the next most-informative tuple (Figure 3.4).
    NextQuestion {
        /// Target session.
        session: u64,
    },
    /// Ask for the `k` most informative tuples (Figure 3.3).
    TopK {
        /// Target session.
        session: u64,
        /// Batch size.
        k: usize,
    },
    /// Label a tuple: the pending question, or an explicit `tuple` rank
    /// (free labeling, Figure 3.1/3.2).
    Answer {
        /// Target session.
        session: u64,
        /// Explicit tuple rank; defaults to the pending question.
        tuple: Option<u64>,
        /// The membership answer.
        label: Label,
    },
    /// Label a whole batch of tuples in one engine propagation pass — the
    /// wire form of the top-k mode's "user answers the whole batch".
    /// Applied atomically: any invalid entry rejects the batch and leaves
    /// the session untouched. Batch size is clamped by the server.
    AnswerBatch {
        /// Target session.
        session: u64,
        /// `(tuple rank, label)` pairs, in order.
        labels: Vec<(u64, Label)>,
    },
    /// Progress statistics (the demo UI's counters).
    Stats {
        /// Target session.
        session: u64,
    },
    /// Why is a tuple classified the way it is?
    Explain {
        /// Target session.
        session: u64,
        /// Tuple rank; defaults to the pending question.
        tuple: Option<u64>,
    },
    /// The current canonical predicate as SQL (and GAV).
    Sql {
        /// Target session.
        session: u64,
    },
    /// The session's label log as a replayable JSON transcript.
    Transcript {
        /// Target session.
        session: u64,
    },
    /// Explicitly rehydrate an evicted session from its journal (resume
    /// also happens transparently on any op naming an evicted id; this op
    /// additionally surfaces the session's shape — columns, progress —
    /// like `CreateSession` does, and reports journal errors directly).
    ResumeSession {
        /// Target session.
        session: u64,
    },
    /// Ids and progress of every session, resident and on-disk.
    ListSessions,
    /// Drop a session.
    CloseSession {
        /// Target session.
        session: u64,
    },
    /// The server's metrics snapshot: per-op request counts and latency
    /// percentiles, transport gauges, store/journal counters.
    Metrics,
}

impl Request {
    /// Decode a request object. Errors are plain strings — the handler
    /// turns them into `{"ok":false,...}` responses.
    pub fn from_json(json: &Json) -> Result<Request, String> {
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing `op` field")?;
        let session = || {
            json.get("session")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("`{op}` needs a numeric `session` field"))
        };
        // A present-but-malformed `tuple` must be rejected, not silently
        // dropped (dropping it would fall back to the pending tuple and
        // label the wrong row).
        let tuple = match json.get("tuple") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| format!("`tuple` must be a non-negative rank, got {v}"))?,
            ),
        };
        match op {
            "CreateSession" => {
                let source = json.get("source").ok_or("missing `source` field")?;
                let source = if let Some(name) = source.get("scenario").and_then(Json::as_str) {
                    Source::Scenario {
                        name: name.to_string(),
                    }
                } else if let Some(rels) = source.get("relations").and_then(Json::as_array) {
                    let mut relations = Vec::new();
                    for (i, rel) in rels.iter().enumerate() {
                        let name = rel
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or(format!("relation {i}: missing `name`"))?;
                        let csv = rel
                            .get("csv")
                            .and_then(Json::as_str)
                            .ok_or(format!("relation {i}: missing `csv`"))?;
                        relations.push((name.to_string(), csv.to_string()));
                    }
                    let view = match json.get("source").and_then(|s| s.get("view")) {
                        None => None,
                        Some(v) => Some(
                            v.as_array()
                                .ok_or("`view` must be an array of relation names")?
                                .iter()
                                .map(|n| {
                                    n.as_str()
                                        .map(str::to_string)
                                        .ok_or("`view` entries must be strings".to_string())
                                })
                                .collect::<Result<Vec<_>, _>>()?,
                        ),
                    };
                    Source::Inline { relations, view }
                } else {
                    return Err("`source` needs either `scenario` or `relations`".into());
                };
                Ok(Request::CreateSession {
                    source,
                    strategy: json
                        .get("strategy")
                        .and_then(Json::as_str)
                        .map(str::to_string),
                    max_product: json.get("max_product").and_then(Json::as_u64),
                    sample_seed: json.get("sample_seed").and_then(Json::as_u64),
                    force_sample: json
                        .get("force_sample")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                })
            }
            "NextQuestion" => Ok(Request::NextQuestion {
                session: session()?,
            }),
            "TopK" => Ok(Request::TopK {
                session: session()?,
                k: json
                    .get("k")
                    .and_then(Json::as_u64)
                    .filter(|&k| k > 0)
                    .ok_or("`TopK` needs a positive `k`")? as usize,
            }),
            "Answer" => Ok(Request::Answer {
                session: session()?,
                tuple,
                label: parse_label(json.get("label").ok_or("`Answer` needs a `label`")?)?,
            }),
            "AnswerBatch" => {
                let entries = json
                    .get("labels")
                    .and_then(Json::as_array)
                    .ok_or("`AnswerBatch` needs a `labels` array")?;
                if entries.is_empty() {
                    return Err("`labels` must not be empty".into());
                }
                let mut labels = Vec::with_capacity(entries.len());
                for (i, entry) in entries.iter().enumerate() {
                    let rank = entry
                        .get("tuple")
                        .and_then(Json::as_u64)
                        .ok_or(format!("labels[{i}]: `tuple` must be a non-negative rank"))?;
                    let label = entry
                        .get("label")
                        .ok_or(format!("labels[{i}]: missing `label`"))
                        .and_then(|l| parse_label(l).map_err(|e| format!("labels[{i}]: {e}")))?;
                    labels.push((rank, label));
                }
                Ok(Request::AnswerBatch {
                    session: session()?,
                    labels,
                })
            }
            "Stats" => Ok(Request::Stats {
                session: session()?,
            }),
            "Explain" => Ok(Request::Explain {
                session: session()?,
                tuple,
            }),
            "Sql" => Ok(Request::Sql {
                session: session()?,
            }),
            "Transcript" => Ok(Request::Transcript {
                session: session()?,
            }),
            "ResumeSession" => Ok(Request::ResumeSession {
                session: session()?,
            }),
            "ListSessions" => Ok(Request::ListSessions),
            "CloseSession" => Ok(Request::CloseSession {
                session: session()?,
            }),
            "Metrics" => Ok(Request::Metrics),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Decode one wire line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let json = Json::parse(line).map_err(|e| e.to_string())?;
        Request::from_json(&json)
    }
}

/// Accepts `"+"`, `"-"`, `"positive"`, `"negative"`, `"yes"`, `"no"`,
/// `"y"`, `"n"` (case-insensitive) and JSON booleans.
pub fn parse_label(value: &Json) -> Result<Label, String> {
    if let Some(b) = value.as_bool() {
        return Ok(Label::from_bool(b));
    }
    match value.as_str().map(str::to_ascii_lowercase).as_deref() {
        Some("+" | "positive" | "yes" | "y" | "true") => Ok(Label::Positive),
        Some("-" | "negative" | "no" | "n" | "false") => Ok(Label::Negative),
        _ => Err(format!("bad label {value}; use \"+\" or \"-\"")),
    }
}

/// Resolve a strategy name to a [`StrategyKind`]. Names are matched
/// ignoring case, `-`, `_` and spaces, so both the display names
/// (`lookahead-minprune`) and the enum names (`LookaheadMinPrune`) work.
/// `random` takes an optional seed suffix: `random:42`.
pub fn parse_strategy(name: &str) -> Result<StrategyKind, String> {
    // Split the `:arg` suffix off *before* normalizing: stripping `-`
    // from the whole string would mangle negative arguments
    // (`lookahead-entropy:-0.5` must not become alpha 0.5).
    let (head_raw, arg) = match name.split_once(':') {
        Some((h, a)) => (h, Some(a)),
        None => (name, None),
    };
    let norm: String = head_raw
        .chars()
        .filter(|c| !matches!(c, '-' | '_' | ' '))
        .collect::<String>()
        .to_ascii_lowercase();
    let head = norm.as_str();
    let kind = match head {
        "random" => StrategyKind::Random {
            seed: match arg {
                None => 0,
                Some(a) => a.parse().map_err(|_| format!("bad random seed `{a}`"))?,
            },
        },
        "localgeneral" => StrategyKind::LocalGeneral,
        "localspecific" => StrategyKind::LocalSpecific,
        "localfrequency" => StrategyKind::LocalFrequency,
        "lookaheadminprune" => StrategyKind::LookaheadMinPrune,
        "lookaheadexpected" => StrategyKind::LookaheadExpected,
        "lookaheadentropy" => StrategyKind::LookaheadEntropy {
            alpha: match arg {
                None => 1.0,
                Some(a) => a.parse().map_err(|_| format!("bad entropy alpha `{a}`"))?,
            },
        },
        "lookahead2step" | "lookaheadtwostep" => StrategyKind::LookaheadTwoStep,
        "hybrid" => StrategyKind::Hybrid { threshold: 16 },
        "dataaware" => StrategyKind::DataAware,
        "optimal" => StrategyKind::Optimal,
        other => return Err(format!("unknown strategy `{other}`")),
    };
    Ok(kind)
}

/// A success response: `{"ok":true, ...fields}`.
pub fn ok(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Object(all)
}

/// An error response: `{"ok":false,"error":message}`.
pub fn error(message: impl Into<String>) -> Json {
    Json::object([
        ("ok", Json::Bool(false)),
        ("error", Json::from(message.into())),
    ])
}

/// The transport-level rejections a client can be refused with *before*
/// (or instead of) its request reaching the handler. Unlike handler
/// errors — which are free-form strings about a specific request — these
/// are conditions of the **connection**, so they carry a stable machine
/// `code` a client can dispatch on (retry-with-backoff for `overloaded`,
/// reconnect for `idle_timeout`, give up for the framing refusals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerError {
    /// The global admission cap is reached: the connection is refused at
    /// accept, answered with this, and closed. Nothing was queued.
    Overloaded,
    /// The connection sat idle (or dripped an incomplete line) past the
    /// server's idle timeout and is being reaped.
    IdleTimeout,
    /// A request line exceeded the 16 MiB cap.
    Oversize,
    /// A request line was not valid UTF-8.
    InvalidUtf8,
    /// A previous request panicked while mutating this session's engine
    /// state; the half-updated session was shed rather than served.
    SessionPoisoned,
}

impl ServerError {
    /// The stable machine-readable `code` field value.
    pub fn code(self) -> &'static str {
        match self {
            ServerError::Overloaded => "overloaded",
            ServerError::IdleTimeout => "idle_timeout",
            ServerError::Oversize => "oversize",
            ServerError::InvalidUtf8 => "invalid_utf8",
            ServerError::SessionPoisoned => "session_poisoned",
        }
    }

    /// The human-readable message.
    pub fn message(self) -> &'static str {
        match self {
            ServerError::Overloaded => {
                "server at max-connections; connection refused — retry with backoff"
            }
            ServerError::IdleTimeout => "connection idle past the server timeout; closing",
            ServerError::Oversize => "request line exceeds the 16 MiB limit",
            ServerError::InvalidUtf8 => {
                "request line is not valid UTF-8; the line was refused, \
                 no session state was touched"
            }
            ServerError::SessionPoisoned => {
                "session state was poisoned by an earlier panic and has \
                 been shed; create a new session"
            }
        }
    }

    /// The full response object: `{"ok":false,"error":...,"code":...}`.
    pub fn response(self) -> Json {
        Json::object([
            ("ok", Json::Bool(false)),
            ("error", Json::from(self.message())),
            ("code", Json::from(self.code())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_with_scenario() {
        let r = Request::parse(
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
        )
        .unwrap();
        match r {
            Request::CreateSession {
                source,
                strategy,
                max_product,
                sample_seed,
                force_sample,
            } => {
                assert_eq!(
                    source,
                    Source::Scenario {
                        name: "flights".into()
                    }
                );
                assert_eq!(strategy.as_deref(), Some("LookaheadMinPrune"));
                assert_eq!(max_product, None);
                assert_eq!(sample_seed, None);
                assert!(!force_sample);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_with_sampling_knobs() {
        let r = Request::parse(
            r#"{"op":"CreateSession","source":{"scenario":"setgame"},"max_product":1000,"sample_seed":7,"force_sample":true}"#,
        )
        .unwrap();
        match r {
            Request::CreateSession {
                max_product,
                sample_seed,
                force_sample,
                ..
            } => {
                assert_eq!(max_product, Some(1000));
                assert_eq!(sample_seed, Some(7));
                assert!(force_sample);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_with_inline_csv_and_view() {
        let r = Request::parse(
            r#"{"op":"CreateSession","source":{"relations":[{"name":"h","csv":"City\nNYC\n"}],"view":["h","h"]}}"#,
        )
        .unwrap();
        match r {
            Request::CreateSession {
                source: Source::Inline { relations, view },
                ..
            } => {
                assert_eq!(relations.len(), 1);
                assert_eq!(view, Some(vec!["h".to_string(), "h".to_string()]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_session_ops() {
        assert_eq!(
            Request::parse(r#"{"op":"NextQuestion","session":3}"#).unwrap(),
            Request::NextQuestion { session: 3 }
        );
        assert_eq!(
            Request::parse(r#"{"op":"TopK","session":1,"k":4}"#).unwrap(),
            Request::TopK { session: 1, k: 4 }
        );
        assert_eq!(
            Request::parse(r#"{"op":"Answer","session":1,"label":"+"}"#).unwrap(),
            Request::Answer {
                session: 1,
                tuple: None,
                label: Label::Positive
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"Answer","session":1,"tuple":7,"label":false}"#).unwrap(),
            Request::Answer {
                session: 1,
                tuple: Some(7),
                label: Label::Negative
            }
        );
        assert_eq!(
            Request::parse(r#"{"op":"CloseSession","session":9}"#).unwrap(),
            Request::CloseSession { session: 9 }
        );
        assert_eq!(
            Request::parse(r#"{"op":"ResumeSession","session":5}"#).unwrap(),
            Request::ResumeSession { session: 5 }
        );
        assert!(Request::parse(r#"{"op":"ResumeSession"}"#).is_err());
        assert_eq!(
            Request::parse(r#"{"op":"ListSessions"}"#).unwrap(),
            Request::ListSessions
        );
        assert_eq!(
            Request::parse(r#"{"op":"Metrics"}"#).unwrap(),
            Request::Metrics
        );
    }

    #[test]
    fn parses_answer_batch() {
        let r = Request::parse(
            r#"{"op":"AnswerBatch","session":4,"labels":[{"tuple":2,"label":"+"},{"tuple":6,"label":false}]}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::AnswerBatch {
                session: 4,
                labels: vec![(2, Label::Positive), (6, Label::Negative)],
            }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"no_op":1}"#,
            r#"{"op":"Frobnicate"}"#,
            r#"{"op":"NextQuestion"}"#,
            r#"{"op":"TopK","session":1,"k":0}"#,
            r#"{"op":"Answer","session":1}"#,
            r#"{"op":"Answer","session":1,"label":"maybe"}"#,
            r#"{"op":"AnswerBatch","session":1}"#,
            r#"{"op":"AnswerBatch","session":1,"labels":[]}"#,
            r#"{"op":"AnswerBatch","session":1,"labels":[{"label":"+"}]}"#,
            r#"{"op":"AnswerBatch","session":1,"labels":[{"tuple":-1,"label":"+"}]}"#,
            r#"{"op":"AnswerBatch","session":1,"labels":[{"tuple":2,"label":"maybe"}]}"#,
            r#"{"op":"AnswerBatch","session":1,"labels":[{"tuple":2}]}"#,
            r#"{"op":"CreateSession"}"#,
            r#"{"op":"CreateSession","source":{}}"#,
            r#"{"op":"CreateSession","source":{"relations":[{"csv":"x"}]}}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn strategy_names_resolve() {
        assert_eq!(
            parse_strategy("LookaheadMinPrune").unwrap(),
            StrategyKind::LookaheadMinPrune
        );
        assert_eq!(
            parse_strategy("lookahead-minprune").unwrap(),
            StrategyKind::LookaheadMinPrune
        );
        assert_eq!(
            parse_strategy("local_general").unwrap(),
            StrategyKind::LocalGeneral
        );
        assert_eq!(
            parse_strategy("random:42").unwrap(),
            StrategyKind::Random { seed: 42 }
        );
        assert_eq!(
            parse_strategy("lookahead-entropy:2.0").unwrap(),
            StrategyKind::LookaheadEntropy { alpha: 2.0 }
        );
        assert_eq!(parse_strategy("optimal").unwrap(), StrategyKind::Optimal);
        assert!(parse_strategy("simulated-annealing").is_err());
        assert!(parse_strategy("random:x").is_err());
        // Negative arguments must not be silently de-signed by name
        // normalization: a u64 seed rejects them, a float alpha keeps the
        // sign.
        assert!(parse_strategy("random:-1").is_err());
        assert_eq!(
            parse_strategy("lookahead-entropy:-0.5").unwrap(),
            StrategyKind::LookaheadEntropy { alpha: -0.5 }
        );
    }

    #[test]
    fn malformed_tuple_field_is_rejected_not_dropped() {
        for bad in [
            r#"{"op":"Answer","session":1,"tuple":"7","label":"+"}"#,
            r#"{"op":"Answer","session":1,"tuple":-3,"label":"+"}"#,
            r#"{"op":"Answer","session":1,"tuple":1.5,"label":"+"}"#,
            r#"{"op":"Explain","session":1,"tuple":"x"}"#,
        ] {
            let err = Request::parse(bad).unwrap_err();
            assert!(err.contains("tuple"), "{bad} -> {err}");
        }
    }

    #[test]
    fn response_helpers_shape() {
        let r = ok([("session", Json::from(1u64))]);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(r.get("session").unwrap().as_u64(), Some(1));
        let e = error("boom");
        assert_eq!(e.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(e.get("error").unwrap().as_str(), Some("boom"));
    }
}
