//! The session store: id-keyed, sharded, concurrent, bounded.
//!
//! A [`Session`] owns everything the interaction loop needs — the engine
//! (which owns its product, which owns its relations), the strategy state,
//! the pending question and the generation-keyed question cache. Nothing
//! borrows; the ownership refactor in `jim-relation`/`jim-core` made
//! `Engine` a `Send + 'static` value precisely so it can live here across
//! requests.
//!
//! Concurrency model: the id map is **sharded** by session id (power-of-two
//! mask), so the per-request lookup (`get`/`peek`/`remove`) contends only
//! on one shard instead of one global map lock — at high session counts,
//! requests against sessions in different shards never serialize on the
//! store at all. Each session additionally has its own lock, so a slow
//! strategy choice in one session never blocks another. `create` is the
//! only cross-shard operation (it must enforce the *global* cap): it takes
//! every shard lock in index order, which is deadlock-free and rare
//! relative to lookups. Capacity is bounded two ways:
//!
//! * **max sessions** — creating one past the cap evicts the globally
//!   least-recently-used session (LRU across all shards);
//! * **TTL** — [`SessionStore::sweep_at`] walks all shards and drops
//!   sessions idle longer than the configured time-to-live (the server
//!   runs it periodically).
//!
//! ## Durability: eviction is not destruction
//!
//! With a [`JournalStore`] attached ([`SessionStore::with_journal`]),
//! session lifetime is decoupled from memory residency. Every persisted
//! session's origin and label batches are already on disk *before* any
//! answer is acked (write-ahead, see [`crate::journal`]), so LRU/TTL
//! eviction simply drops the in-memory copy — nothing is written at
//! eviction time — and [`SessionStore::get`] **falls through to disk on a
//! miss**, rebuilding the engine from its origin and replaying the
//! journal batch by batch. Requests against an evicted id therefore keep
//! working transparently; only [`SessionStore::remove`] (the wire's
//! `CloseSession`) deletes the journal for good. Eviction and
//! persisted-eviction totals are counted for the `ListSessions` response.
//!
//! Only *labels* are durable. Per-question ephemera — the pending
//! proposal and the generation-keyed question cache — are deliberately
//! not journaled (they would cost a write per question), so a session
//! resumes with no pending question: a tuple-less `Answer` right after a
//! resume is rejected with "no pending question" and the client re-asks
//! `NextQuestion`, which re-proposes deterministically for the stateless
//! strategies.

use crate::journal::JournalStore;
use crate::metrics::ServerMetrics;
use crate::sync::LockExt;
use jim_core::{Engine, Label, SessionOrigin, Strategy};
use jim_relation::ProductId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The strategy's answer for one engine generation — what `NextQuestion`
/// computed, kept so an unanswered (or retried) question never re-runs the
/// strategy. Any label or absorb bumps [`Engine::generation`], which makes
/// the entry stale; the handler then recomputes and re-caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuestionCache {
    /// [`Engine::generation`] at compute time.
    pub generation: u64,
    /// The proposed tuple, or `None` when the engine was resolved.
    pub choice: Option<ProductId>,
}

/// One live inference session, owned by the store.
pub struct Session {
    /// The store-assigned id.
    pub id: u64,
    /// The engine, in whatever state the labels so far have produced.
    pub engine: Engine,
    /// The strategy driving question selection (stateful for random /
    /// data-aware strategies).
    pub strategy: Box<dyn Strategy + Send>,
    /// Display name of the strategy, echoed in responses.
    pub strategy_name: String,
    /// The question last proposed and not yet answered, if any.
    pub pending: Option<ProductId>,
    /// The last `NextQuestion` result, valid while the engine generation
    /// it was computed at is current.
    pub cache: Option<QuestionCache>,
    /// Whether the session's instance is a sample of a larger product.
    pub sampled: bool,
    /// Provenance for rebuilding the engine from nothing, when recorded.
    pub origin: Option<SessionOrigin>,
    /// Whether this session has a write-ahead journal on disk (its labels
    /// survive eviction and process death).
    pub persisted: bool,
}

/// The outcome of one TTL sweep ([`SessionStore::sweep_report`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Ids this sweep evicted from memory, ascending.
    pub evicted: Vec<u64>,
    /// How many of [`SweepReport::evicted`] had a journal and stayed
    /// resumable on disk.
    pub persisted: usize,
}

/// Store limits.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Maximum number of live sessions; creating past this evicts the LRU
    /// session.
    pub max_sessions: usize,
    /// Idle time after which a session may be swept.
    pub ttl: Duration,
    /// Number of id-keyed shards (rounded up to a power of two, min 1).
    pub shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_sessions: 64,
            ttl: Duration::from_secs(30 * 60),
            shards: 8,
        }
    }
}

struct Entry {
    session: Arc<Mutex<Session>>,
    last_touched: Instant,
    /// Mirror of `Session::persisted` (fixed at insert), readable without
    /// taking the session lock — the sweeper must classify evictions
    /// without blocking on a slow strategy choice.
    persisted: bool,
}

type Shard = Mutex<HashMap<u64, Entry>>;

/// The concurrent, sharded session map (see module docs).
pub struct SessionStore {
    config: StoreConfig,
    shards: Box<[Shard]>,
    mask: u64,
    next_id: AtomicU64,
    /// The write-ahead journal directory, when durability is on.
    journal: Option<JournalStore>,
    /// The server-wide metrics aggregate. The store owns it because the
    /// store is the one value every server layer (handler, transports,
    /// sweeper, bins) already shares — store/journal counters are updated
    /// here at the sites where the events happen, transport and per-op
    /// counters by the layers that reach the aggregate through
    /// [`SessionStore::metrics`].
    metrics: Arc<ServerMetrics>,
}

impl SessionStore {
    /// A store with the given limits.
    pub fn new(config: StoreConfig) -> Self {
        Self::build(config, None)
    }

    /// A store whose sessions are journaled to `journal` — evictions
    /// persist instead of destroy, and lookups fall through to disk.
    /// Ids are allocated past the largest journal on disk, so a store
    /// rebuilt over an existing directory never collides with (and can
    /// transparently resume) the sessions a previous process left behind.
    pub fn with_journal(config: StoreConfig, journal: JournalStore) -> Self {
        Self::build(config, Some(journal))
    }

    fn build(config: StoreConfig, journal: Option<JournalStore>) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        let first_id = journal.as_ref().map_or(0, JournalStore::max_id) + 1;
        SessionStore {
            config,
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n as u64 - 1,
            next_id: AtomicU64::new(first_id),
            journal,
            metrics: Arc::new(ServerMetrics::new()),
        }
    }

    /// The journal directory, when durability is on.
    pub fn journal(&self) -> Option<&JournalStore> {
        self.journal.as_ref()
    }

    /// The server-wide metrics aggregate (see the field docs).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Sessions dropped from memory by LRU/TTL eviction so far.
    pub fn evicted_total(&self) -> u64 {
        self.metrics.evicted_total.get()
    }

    /// Evicted sessions that stayed resumable on disk.
    pub fn persisted_total(&self) -> u64 {
        self.metrics.persisted_total.get()
    }

    fn count_eviction(&self, persisted: bool) {
        self.metrics.evicted_total.inc();
        self.metrics.resident_sessions.add(-1);
        if persisted {
            self.metrics.persisted_total.inc();
        }
    }

    /// The configured limits.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of shards actually allocated (the config rounded up to a
    /// power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, id: u64) -> &Shard {
        // Sequential ids round-robin across shards.
        &self.shards[(id & self.mask) as usize]
    }

    /// Number of live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock_unpoisoned().len()).sum()
    }

    /// True iff no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a new session built from `engine` + `strategy`; returns its
    /// id and handle. Evicts expired sessions first, then the globally
    /// least-recently-used session if the store is still at capacity.
    /// Returns the id of the evicted LRU session, if any, alongside the
    /// new session.
    pub fn create(
        &self,
        engine: Engine,
        strategy: Box<dyn Strategy + Send>,
        strategy_name: String,
    ) -> (Arc<Mutex<Session>>, Option<u64>) {
        self.create_session(engine, strategy, strategy_name, false, None)
    }

    /// [`SessionStore::create`] with the sampled flag and the provenance
    /// to persist. With a journal attached and an origin given, the
    /// journal header is written before this returns — the session is
    /// durable from birth (`Session::persisted`); without either, the
    /// session is memory-only and dies with its eviction.
    pub fn create_session(
        &self,
        engine: Engine,
        strategy: Box<dyn Strategy + Send>,
        strategy_name: String,
        sampled: bool,
        origin: Option<SessionOrigin>,
    ) -> (Arc<Mutex<Session>>, Option<u64>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let persisted = match (&self.journal, &origin) {
            (Some(journal), Some(origin)) => match journal.create(id, origin) {
                Ok(bytes) => {
                    self.metrics.journal_bytes.add(bytes as u64);
                    true
                }
                Err(e) => {
                    eprintln!("jim-server: cannot journal session {id}: {e}");
                    false
                }
            },
            _ => false,
        };
        let session = Session {
            id,
            engine,
            strategy,
            strategy_name,
            pending: None,
            cache: None,
            sampled,
            origin,
            persisted,
        };
        let (handle, evicted) = self.insert(session);
        (handle, evicted)
    }

    /// Insert an owned session (newly created or rehydrated), evicting
    /// expired sessions first and then the global LRU victim if the store
    /// is still at capacity. If the id is already resident (a concurrent
    /// resume won the race), the resident handle wins and `session` is
    /// dropped.
    fn insert(&self, session: Session) -> (Arc<Mutex<Session>>, Option<u64>) {
        let id = session.id;
        let persisted = session.persisted;
        let now = Instant::now();
        // The global cap needs a consistent view: take every shard lock in
        // index order (deadlock-free; creates are rare next to lookups).
        let mut guards: Vec<MutexGuard<'_, HashMap<u64, Entry>>> =
            self.shards.iter().map(|s| s.lock_unpoisoned()).collect();
        let shard = (id & self.mask) as usize;
        if let Some(e) = guards[shard].get_mut(&id) {
            e.last_touched = now;
            return (Arc::clone(&e.session), None);
        }
        for guard in guards.iter_mut() {
            for (_, was_persisted) in Self::sweep_locked(guard, now, self.config.ttl) {
                self.count_eviction(was_persisted);
            }
        }
        let mut evicted = None;
        let total: usize = guards.iter().map(|g| g.len()).sum();
        if total >= self.config.max_sessions {
            // Global LRU victim; ties broken by smallest id for
            // determinism. Sessions with an in-flight request (a handle
            // besides the entry's own) are never victims — evicting one
            // mid-request would let a concurrent resume replay the
            // journal *before* that request's append lands, resurrecting
            // a copy missing an acked batch.
            let victim = guards
                .iter()
                .enumerate()
                .flat_map(|(si, g)| {
                    g.iter()
                        .filter(|(_, e)| Arc::strong_count(&e.session) == 1)
                        .map(move |(&id, e)| (e.last_touched, id, si))
                })
                .min();
            if let Some((_, lru, si)) = victim {
                // The victim was found under these same guards, so it must
                // still be present; if it somehow is not, skip the eviction
                // rather than panic while holding every shard lock.
                if let Some(entry) = guards[si].remove(&lru) {
                    self.count_eviction(entry.persisted);
                    evicted = Some(lru);
                }
            }
        }
        let session = Arc::new(Mutex::new(session));
        guards[shard].insert(
            id,
            Entry {
                session: Arc::clone(&session),
                last_touched: now,
                persisted,
            },
        );
        // All shard locks are held: this is the one place the resident
        // gauge can be set to an exact population instead of nudged by a
        // delta, correcting any drift from concurrent sweeps.
        let total: usize = guards.iter().map(|g| g.len()).sum();
        self.metrics.resident_sessions.set(total as i64);
        (session, evicted)
    }

    /// Fetch a session handle, refreshing its LRU/TTL stamp. With a
    /// journal attached this **falls through to disk** on a memory miss
    /// and rehydrates the session by replay; journal errors are logged
    /// and reported as a miss (use [`SessionStore::fetch`] to see them).
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        match self.fetch(id) {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("jim-server: resume of session {id} failed: {e}");
                None
            }
        }
    }

    /// [`SessionStore::get`] with journal errors surfaced: `Ok(None)`
    /// means the session exists neither in memory nor on disk.
    pub fn fetch(&self, id: u64) -> Result<Option<Arc<Mutex<Session>>>, String> {
        if let Some(handle) = self.get_resident(id) {
            return Ok(Some(handle));
        }
        let Some(journal) = &self.journal else {
            return Ok(None);
        };
        let Some(stored) = journal.load(id)? else {
            return Ok(None);
        };
        self.metrics.store_resumes.inc();
        self.metrics
            .replayed_batches
            .add(stored.batches.len() as u64);
        let engine = stored.rebuild_engine()?;
        let (strategy, strategy_name) = stored.rebuild_strategy()?;
        let session = Session {
            id,
            engine,
            strategy,
            strategy_name,
            pending: None,
            cache: None,
            sampled: stored.origin.sampled,
            origin: Some(stored.origin),
            persisted: true,
        };
        // Insert under the cap like any other session; if a concurrent
        // request resumed the same id first, its handle wins.
        let (handle, _) = self.insert(session);
        Ok(Some(handle))
    }

    fn get_resident(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        let mut entries = self.shard(id).lock_unpoisoned();
        entries.get_mut(&id).map(|e| {
            e.last_touched = Instant::now();
            self.metrics.store_hits.inc();
            Arc::clone(&e.session)
        })
    }

    /// Append one applied label batch to the session's journal (no-op for
    /// unpersisted sessions). Call while holding the session lock, after
    /// the engine accepted the batch and before acking it — journal order
    /// then equals application order, and a rejected batch never lands.
    ///
    /// A failed append (disk full, permissions) **demotes the session to
    /// memory-only and deletes its journal**: the engine already applied
    /// the batch and the client will be acked, so a journal missing an
    /// acked batch must never be replayed — resuming from it would hand
    /// the user a session silently diverged from what they saw.
    pub fn record_batch(&self, session: &mut Session, labels: &[(ProductId, Label)]) {
        if !session.persisted {
            return;
        }
        if let Some(journal) = &self.journal {
            match journal.append(session.id, labels) {
                Ok(bytes) => self.metrics.journal_bytes.add(bytes as u64),
                Err(e) => {
                    eprintln!(
                        "jim-server: journal append for session {} failed ({e}); \
                         demoting the session to memory-only",
                        session.id
                    );
                    session.persisted = false;
                    journal.delete(session.id);
                    // Shard-after-session lock acquisition is safe here: no
                    // path in this module acquires a session lock while
                    // holding a shard lock (guards are dropped before
                    // handles are locked).
                    if let Some(entry) = self
                        .shard(session.id)
                        .lock_unpoisoned()
                        .get_mut(&session.id)
                    {
                        entry.persisted = false;
                    }
                }
            }
        }
    }

    /// Fetch a session handle **without** refreshing its LRU/TTL stamp —
    /// for observers (listing, metrics) that must not keep idle sessions
    /// alive or reorder eviction.
    pub fn peek(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        let entries = self.shard(id).lock_unpoisoned();
        entries.get(&id).map(|e| Arc::clone(&e.session))
    }

    /// Close a session for good: drop it from memory **and delete its
    /// journal** — unlike eviction, this is destruction. `true` if it
    /// existed in memory or on disk.
    pub fn remove(&self, id: u64) -> bool {
        let resident = self.shard(id).lock_unpoisoned().remove(&id).is_some();
        if resident {
            self.metrics.resident_sessions.add(-1);
        }
        let on_disk = self.journal.as_ref().is_some_and(|j| j.delete(id));
        resident || on_disk
    }

    /// Session ids resumable from disk but not currently resident,
    /// ascending. Empty without a journal.
    pub fn disk_ids(&self) -> Vec<u64> {
        let Some(journal) = &self.journal else {
            return Vec::new();
        };
        journal
            .ids()
            .into_iter()
            .filter(|&id| !self.shard(id).lock_unpoisoned().contains_key(&id))
            .collect()
    }

    /// Live session ids across all shards, ascending.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.lock_unpoisoned().keys().copied().collect::<Vec<u64>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Evict every session idle at `now` for longer than the TTL, in
    /// every shard; returns the evicted ids ascending (eviction counters
    /// are updated — persisted sessions remain resumable on disk, the
    /// write-ahead journal means nothing needs writing here). The
    /// server's sweeper thread calls this with `Instant::now()`; tests
    /// can pass a synthetic "future" instant.
    pub fn sweep_at(&self, now: Instant) -> Vec<u64> {
        self.sweep_report(now).evicted
    }

    /// [`SessionStore::sweep_at`] with per-sweep accounting: how many of
    /// *this sweep's* victims stayed resumable on disk. The count is
    /// derived from the sweep result itself, never from before/after
    /// deltas of the store-wide totals — those also move when a
    /// concurrent `create` LRU-evicts, which would mis-attribute its
    /// evictions to the sweep.
    pub fn sweep_report(&self, now: Instant) -> SweepReport {
        let mut expired: Vec<(u64, bool)> = self
            .shards
            .iter()
            .flat_map(|s| {
                let mut entries = s.lock_unpoisoned();
                Self::sweep_locked(&mut entries, now, self.config.ttl)
            })
            .collect();
        for &(_, persisted) in &expired {
            self.count_eviction(persisted);
        }
        expired.sort_unstable();
        SweepReport {
            persisted: expired.iter().filter(|&&(_, p)| p).count(),
            evicted: expired.into_iter().map(|(id, _)| id).collect(),
        }
    }

    /// Remove expired entries from one locked shard, returning
    /// `(id, persisted)` pairs so callers can account for them. Entries
    /// with an in-flight handle (`Arc` strong count above the entry's
    /// own) are spared for the same reason the LRU path spares them:
    /// eviction must never race a request that is about to journal.
    fn sweep_locked(
        entries: &mut HashMap<u64, Entry>,
        now: Instant,
        ttl: Duration,
    ) -> Vec<(u64, bool)> {
        let expired: Vec<(u64, bool)> = entries
            .iter()
            .filter(|(_, e)| {
                now.saturating_duration_since(e.last_touched) > ttl
                    && Arc::strong_count(&e.session) == 1
            })
            .map(|(&id, e)| (id, e.persisted))
            .collect();
        for (id, _) in &expired {
            entries.remove(id);
        }
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_core::{EngineOptions, StrategyKind};
    use jim_relation::Product;
    use jim_synth::flights;

    fn engine() -> Engine {
        let p = Product::new(vec![flights::flights(), flights::hotels()]).unwrap();
        Engine::new(p, &EngineOptions::default()).unwrap()
    }

    fn store(max: usize, ttl: Duration) -> SessionStore {
        SessionStore::new(StoreConfig {
            max_sessions: max,
            ttl,
            ..Default::default()
        })
    }

    fn create(s: &SessionStore) -> (u64, Option<u64>) {
        let kind = StrategyKind::LookaheadMinPrune;
        let (session, evicted) = s.create(engine(), kind.build(), kind.to_string());
        let id = session.lock().unwrap().id;
        (id, evicted)
    }

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let s = store(8, Duration::from_secs(60));
        let (a, _) = create(&s);
        let (b, _) = create(&s);
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids(), vec![a, b]);
        assert!(s.get(a).is_some());
        assert!(s.get(999).is_none());
        assert!(s.remove(a));
        assert!(!s.remove(a));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let s = store(2, Duration::from_secs(60));
        let (a, e1) = create(&s);
        let (b, e2) = create(&s);
        assert_eq!((e1, e2), (None, None));
        // Touch `a` so `b` becomes the LRU.
        assert!(s.get(a).is_some());
        let (c, evicted) = create(&s);
        assert_eq!(evicted, Some(b));
        assert_eq!(s.ids(), vec![a, c]);
    }

    #[test]
    fn lru_eviction_spans_shards() {
        // Sessions land in distinct shards (sequential ids, power-of-two
        // mask), yet the cap is global and the LRU victim is found across
        // all of them.
        let s = SessionStore::new(StoreConfig {
            max_sessions: 4,
            ttl: Duration::from_secs(60),
            shards: 4,
        });
        assert_eq!(s.num_shards(), 4);
        let ids: Vec<u64> = (0..4).map(|_| create(&s).0).collect();
        // Touch everything except the second session.
        for &id in ids.iter().filter(|&&id| id != ids[1]) {
            assert!(s.get(id).is_some());
        }
        let (e, evicted) = create(&s);
        assert_eq!(evicted, Some(ids[1]), "global LRU evicted across shards");
        assert_eq!(s.len(), 4);
        assert!(s.get(e).is_some());
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        let s = SessionStore::new(StoreConfig {
            shards: 5,
            ..Default::default()
        });
        assert_eq!(s.num_shards(), 8);
        let s = SessionStore::new(StoreConfig {
            shards: 0,
            ..Default::default()
        });
        assert_eq!(s.num_shards(), 1);
        assert!(create(&s).1.is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ttl_sweep_expires_idle_sessions() {
        let ttl = Duration::from_secs(60);
        let s = store(8, ttl);
        let (a, _) = create(&s);
        // Nothing expires "now".
        assert!(s.sweep_at(Instant::now()).is_empty());
        // Everything idle longer than the TTL expires at a future instant.
        let future = Instant::now() + ttl + Duration::from_secs(1);
        assert_eq!(s.sweep_at(future), vec![a]);
        assert!(s.is_empty());
        assert!(s.get(a).is_none());
    }

    #[test]
    fn ttl_sweep_walks_every_shard() {
        let ttl = Duration::from_secs(60);
        let s = SessionStore::new(StoreConfig {
            max_sessions: 16,
            ttl,
            shards: 4,
        });
        let ids: Vec<u64> = (0..6).map(|_| create(&s).0).collect();
        let future = Instant::now() + ttl + Duration::from_secs(1);
        assert_eq!(s.sweep_at(future), ids, "all shards swept, ids ascending");
        assert!(s.is_empty());
    }

    #[test]
    fn peek_does_not_refresh_the_ttl_stamp() {
        let ttl = Duration::from_secs(60);
        let s = store(8, ttl);
        let (a, _) = create(&s);
        // Observe via peek only; the session must still expire on a sweep
        // past its creation-time stamp.
        assert!(s.peek(a).is_some());
        let future = Instant::now() + ttl + Duration::from_secs(1);
        assert!(s.peek(a).is_some());
        assert_eq!(s.sweep_at(future), vec![a]);
        assert!(s.peek(999).is_none());
    }

    #[test]
    fn session_survives_across_handle_drops() {
        let s = store(8, Duration::from_secs(60));
        let (id, _) = create(&s);
        {
            let h = s.get(id).unwrap();
            let mut guard = h.lock().unwrap();
            let session = &mut *guard;
            let pick = jim_core::strategy::choose_next(session.strategy.as_mut(), &session.engine)
                .unwrap();
            session.pending = Some(pick);
        }
        let h = s.get(id).unwrap();
        assert!(h.lock().unwrap().pending.is_some());
    }

    fn flights_origin() -> SessionOrigin {
        SessionOrigin {
            source: jim_core::OriginSource::Scenario {
                name: "flights".into(),
            },
            strategy: None,
            max_product: 5_000_000,
            sample_seed: 0,
            sampled: false,
            factorized: false,
        }
    }

    fn journaled_store(tag: &str, max: usize, ttl: Duration) -> SessionStore {
        let dir = std::env::temp_dir().join(format!("jim-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SessionStore::with_journal(
            StoreConfig {
                max_sessions: max,
                ttl,
                ..Default::default()
            },
            JournalStore::open(dir).unwrap(),
        )
    }

    fn create_persisted(s: &SessionStore) -> u64 {
        let kind = StrategyKind::LookaheadMinPrune;
        let (session, _) = s.create_session(
            engine(),
            kind.build(),
            kind.to_string(),
            false,
            Some(flights_origin()),
        );
        let session = session.lock().unwrap();
        assert!(session.persisted);
        session.id
    }

    fn cleanup(s: &SessionStore) {
        if let Some(j) = s.journal() {
            let _ = std::fs::remove_dir_all(j.root());
        }
    }

    /// Label the session through the store the way the handler does:
    /// engine first, then the journal append, under the session lock.
    fn label_recorded(s: &SessionStore, id: u64, batch: &[(ProductId, jim_core::Label)]) {
        let handle = s.get(id).unwrap();
        let mut guard = handle.lock().unwrap();
        let session = &mut *guard;
        session.engine.label_batch(batch).unwrap();
        s.record_batch(session, batch);
    }

    #[test]
    fn evicted_session_resumes_transparently_from_disk() {
        use jim_core::Label;
        let ttl = Duration::from_secs(60);
        let s = journaled_store("evict", 8, ttl);
        let id = create_persisted(&s);
        label_recorded(&s, id, &[(ProductId(2), Label::Positive)]);
        label_recorded(
            &s,
            id,
            &[
                (ProductId(6), Label::Negative),
                (ProductId(7), Label::Negative),
            ],
        );

        // TTL eviction drops it from memory but not from disk.
        let future = Instant::now() + ttl + Duration::from_secs(1);
        assert_eq!(s.sweep_at(future), vec![id]);
        assert!(s.ids().is_empty());
        assert_eq!(s.disk_ids(), vec![id]);
        assert_eq!((s.evicted_total(), s.persisted_total()), (1, 1));

        // A plain get falls through to disk and replays: the rehydrated
        // engine carries the exact labeled state, batch trajectory
        // included (generation = number of recorded batches).
        let handle = s.get(id).unwrap();
        let session = handle.lock().unwrap();
        assert_eq!(session.id, id);
        assert!(session.persisted);
        assert!(session.engine.is_resolved());
        assert_eq!(session.engine.generation(), 2);
        assert_eq!(session.engine.stats().interactions(), 3);
        drop(session);
        assert_eq!(s.ids(), vec![id], "resident again");
        assert!(s.disk_ids().is_empty());
        cleanup(&s);
    }

    #[test]
    fn memory_only_sessions_die_on_eviction_even_with_a_journal() {
        let ttl = Duration::from_secs(60);
        let s = journaled_store("memonly", 8, ttl);
        // No origin recorded: nothing to rebuild from.
        let (id, _) = create(&s);
        let future = Instant::now() + ttl + Duration::from_secs(1);
        assert_eq!(s.sweep_at(future), vec![id]);
        assert_eq!((s.evicted_total(), s.persisted_total()), (1, 0));
        assert!(s.get(id).is_none());
        cleanup(&s);
    }

    #[test]
    fn remove_deletes_the_journal_for_good() {
        let s = journaled_store("close", 8, Duration::from_secs(60));
        let id = create_persisted(&s);
        assert!(s.journal().unwrap().contains(id));
        assert!(s.remove(id));
        assert!(!s.journal().unwrap().contains(id));
        assert!(s.get(id).is_none(), "closed ≠ evicted: no resume");
        assert!(!s.remove(id));

        // Removing an evicted-but-durable session also deletes its journal.
        let ttl = s.config().ttl;
        let id = create_persisted(&s);
        s.sweep_at(Instant::now() + ttl + Duration::from_secs(1));
        assert!(s.remove(id), "on-disk-only session still closable");
        assert!(s.get(id).is_none());
        cleanup(&s);
    }

    #[test]
    fn restarted_store_resumes_sessions_and_allocates_past_them() {
        use jim_core::Label;
        let dir = {
            let s = journaled_store("restart", 8, Duration::from_secs(60));
            let id = create_persisted(&s);
            label_recorded(&s, id, &[(ProductId(2), Label::Positive)]);
            assert_eq!(id, 1);
            s.journal().unwrap().root().to_path_buf()
        }; // the first store (the "process") is gone

        let s =
            SessionStore::with_journal(StoreConfig::default(), JournalStore::open(&dir).unwrap());
        assert!(s.is_empty(), "nothing resident after restart");
        assert_eq!(s.disk_ids(), vec![1]);
        // The old session resumes with its label; new ids never collide.
        let handle = s.get(1).unwrap();
        assert_eq!(handle.lock().unwrap().engine.stats().interactions(), 1);
        let (new_id, _) = create(&s);
        assert_eq!(new_id, 2);
        cleanup(&s);
    }

    #[test]
    fn sessions_with_an_in_flight_handle_are_never_evicted() {
        // Evicting a session another thread is mid-request on would let a
        // concurrent resume replay the journal before that request's
        // append lands; busy sessions are spared by both eviction paths.
        let ttl = Duration::from_secs(60);
        let s = store(2, ttl);
        let (a, _) = create(&s);
        let held = s.get(a).unwrap();
        let future = Instant::now() + ttl + Duration::from_secs(1);
        assert!(s.sweep_at(future).is_empty(), "busy session survives TTL");
        // The LRU path spares it too: at capacity, the *other* (idle)
        // session is the victim even though `a` is least-recently-used.
        let (b, _) = create(&s);
        assert!(s.get(b).is_some());
        let (c, evicted) = create(&s);
        assert_eq!(evicted, Some(b), "idle session evicted over the busy LRU");
        drop(held);
        assert_eq!(s.sweep_at(future), vec![a, c], "released handle, evictable");
    }

    #[test]
    fn lru_eviction_at_capacity_persists_durable_sessions() {
        let s = journaled_store("lru", 2, Duration::from_secs(600));
        let a = create_persisted(&s);
        let b = create_persisted(&s);
        assert!(s.get(a).is_some()); // make b the LRU victim
        let c = create_persisted(&s);
        assert_eq!(s.ids(), vec![a, c]);
        assert_eq!((s.evicted_total(), s.persisted_total()), (1, 1));
        // The LRU victim is still reachable — getting it back evicts the
        // new LRU (a, untouched since) to stay under the cap.
        assert!(s.get(b).is_some());
        assert_eq!(s.len(), 2);
        assert_eq!(s.evicted_total(), 2);
        cleanup(&s);
    }

    #[test]
    fn sweep_report_counts_only_its_own_victims() {
        // An LRU eviction on `create` moves the store-wide persisted
        // total; the next sweep's report must not absorb it (the old
        // sweeper log diffed the totals and mis-attributed exactly this).
        let ttl = Duration::from_secs(60);
        let s = journaled_store("sweepreport", 2, ttl);
        let a = create_persisted(&s);
        let b = create_persisted(&s);
        assert!(s.get(a).is_some()); // b becomes the LRU victim
        let c = create_persisted(&s); // LRU-evicts b, persisted
        assert_eq!((s.evicted_total(), s.persisted_total()), (1, 1));

        let report = s.sweep_report(Instant::now() + ttl + Duration::from_secs(1));
        assert_eq!(report.evicted, vec![a, c]);
        assert_eq!(
            report.persisted, 2,
            "the LRU eviction of {b} is not the sweep's"
        );
        assert_eq!((s.evicted_total(), s.persisted_total()), (3, 3));

        // A sweep with nothing to do reports nothing.
        assert_eq!(s.sweep_report(Instant::now()), SweepReport::default());
        cleanup(&s);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let s = Arc::new(store(16, Duration::from_secs(60)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let (id, _) = create(&s);
                    assert!(s.get(id).is_some());
                    id
                })
            })
            .collect();
        let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(s.len(), 4);
    }
}
