//! The session store: id-keyed, sharded, concurrent, bounded.
//!
//! A [`Session`] owns everything the interaction loop needs — the engine
//! (which owns its product, which owns its relations), the strategy state,
//! the pending question and the generation-keyed question cache. Nothing
//! borrows; the ownership refactor in `jim-relation`/`jim-core` made
//! `Engine` a `Send + 'static` value precisely so it can live here across
//! requests.
//!
//! Concurrency model: the id map is **sharded** by session id (power-of-two
//! mask), so the per-request lookup (`get`/`peek`/`remove`) contends only
//! on one shard instead of one global map lock — at high session counts,
//! requests against sessions in different shards never serialize on the
//! store at all. Each session additionally has its own lock, so a slow
//! strategy choice in one session never blocks another. `create` is the
//! only cross-shard operation (it must enforce the *global* cap): it takes
//! every shard lock in index order, which is deadlock-free and rare
//! relative to lookups. Capacity is bounded two ways:
//!
//! * **max sessions** — creating one past the cap evicts the globally
//!   least-recently-used session (LRU across all shards);
//! * **TTL** — [`SessionStore::sweep_at`] walks all shards and drops
//!   sessions idle longer than the configured time-to-live (the server
//!   runs it periodically).

use jim_core::{Engine, Strategy};
use jim_relation::ProductId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The strategy's answer for one engine generation — what `NextQuestion`
/// computed, kept so an unanswered (or retried) question never re-runs the
/// strategy. Any label or absorb bumps [`Engine::generation`], which makes
/// the entry stale; the handler then recomputes and re-caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuestionCache {
    /// [`Engine::generation`] at compute time.
    pub generation: u64,
    /// The proposed tuple, or `None` when the engine was resolved.
    pub choice: Option<ProductId>,
}

/// One live inference session, owned by the store.
pub struct Session {
    /// The store-assigned id.
    pub id: u64,
    /// The engine, in whatever state the labels so far have produced.
    pub engine: Engine,
    /// The strategy driving question selection (stateful for random /
    /// data-aware strategies).
    pub strategy: Box<dyn Strategy + Send>,
    /// Display name of the strategy, echoed in responses.
    pub strategy_name: String,
    /// The question last proposed and not yet answered, if any.
    pub pending: Option<ProductId>,
    /// The last `NextQuestion` result, valid while the engine generation
    /// it was computed at is current.
    pub cache: Option<QuestionCache>,
    /// Whether the session's instance is a sample of a larger product.
    pub sampled: bool,
}

/// Store limits.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Maximum number of live sessions; creating past this evicts the LRU
    /// session.
    pub max_sessions: usize,
    /// Idle time after which a session may be swept.
    pub ttl: Duration,
    /// Number of id-keyed shards (rounded up to a power of two, min 1).
    pub shards: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_sessions: 64,
            ttl: Duration::from_secs(30 * 60),
            shards: 8,
        }
    }
}

struct Entry {
    session: Arc<Mutex<Session>>,
    last_touched: Instant,
}

type Shard = Mutex<HashMap<u64, Entry>>;

/// The concurrent, sharded session map (see module docs).
pub struct SessionStore {
    config: StoreConfig,
    shards: Box<[Shard]>,
    mask: u64,
    next_id: AtomicU64,
}

impl SessionStore {
    /// A store with the given limits.
    pub fn new(config: StoreConfig) -> Self {
        let n = config.shards.max(1).next_power_of_two();
        SessionStore {
            config,
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n as u64 - 1,
            next_id: AtomicU64::new(1),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of shards actually allocated (the config rounded up to a
    /// power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, id: u64) -> &Shard {
        // Sequential ids round-robin across shards.
        &self.shards[(id & self.mask) as usize]
    }

    /// Number of live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("store lock").len())
            .sum()
    }

    /// True iff no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a new session built from `engine` + `strategy`; returns its
    /// id and handle. Evicts expired sessions first, then the globally
    /// least-recently-used session if the store is still at capacity.
    /// Returns the id of the evicted LRU session, if any, alongside the
    /// new session.
    pub fn create(
        &self,
        engine: Engine,
        strategy: Box<dyn Strategy + Send>,
        strategy_name: String,
    ) -> (Arc<Mutex<Session>>, Option<u64>) {
        self.create_session(engine, strategy, strategy_name, false)
    }

    /// [`SessionStore::create`] with the sampled flag set on the session.
    pub fn create_session(
        &self,
        engine: Engine,
        strategy: Box<dyn Strategy + Send>,
        strategy_name: String,
        sampled: bool,
    ) -> (Arc<Mutex<Session>>, Option<u64>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let session = Arc::new(Mutex::new(Session {
            id,
            engine,
            strategy,
            strategy_name,
            pending: None,
            cache: None,
            sampled,
        }));
        let now = Instant::now();
        // The global cap needs a consistent view: take every shard lock in
        // index order (deadlock-free; creates are rare next to lookups).
        let mut guards: Vec<MutexGuard<'_, HashMap<u64, Entry>>> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("store lock"))
            .collect();
        for guard in guards.iter_mut() {
            Self::sweep_locked(guard, now, self.config.ttl);
        }
        let mut evicted = None;
        let total: usize = guards.iter().map(|g| g.len()).sum();
        if total >= self.config.max_sessions {
            // Global LRU victim; ties broken by smallest id for determinism.
            let victim = guards
                .iter()
                .enumerate()
                .flat_map(|(si, g)| g.iter().map(move |(&id, e)| (e.last_touched, id, si)))
                .min();
            if let Some((_, lru, si)) = victim {
                guards[si].remove(&lru);
                evicted = Some(lru);
            }
        }
        guards[(id & self.mask) as usize].insert(
            id,
            Entry {
                session: Arc::clone(&session),
                last_touched: now,
            },
        );
        (session, evicted)
    }

    /// Fetch a session handle, refreshing its LRU/TTL stamp.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        let mut entries = self.shard(id).lock().expect("store lock");
        entries.get_mut(&id).map(|e| {
            e.last_touched = Instant::now();
            Arc::clone(&e.session)
        })
    }

    /// Fetch a session handle **without** refreshing its LRU/TTL stamp —
    /// for observers (listing, metrics) that must not keep idle sessions
    /// alive or reorder eviction.
    pub fn peek(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        let entries = self.shard(id).lock().expect("store lock");
        entries.get(&id).map(|e| Arc::clone(&e.session))
    }

    /// Drop a session; `true` if it existed.
    pub fn remove(&self, id: u64) -> bool {
        self.shard(id)
            .lock()
            .expect("store lock")
            .remove(&id)
            .is_some()
    }

    /// Live session ids across all shards, ascending.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("store lock")
                    .keys()
                    .copied()
                    .collect::<Vec<u64>>()
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Evict every session idle at `now` for longer than the TTL, in every
    /// shard; returns the evicted ids ascending. The server's sweeper
    /// thread calls this with `Instant::now()`; tests can pass a synthetic
    /// "future" instant.
    pub fn sweep_at(&self, now: Instant) -> Vec<u64> {
        let mut expired: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| {
                let mut entries = s.lock().expect("store lock");
                Self::sweep_locked(&mut entries, now, self.config.ttl)
            })
            .collect();
        expired.sort_unstable();
        expired
    }

    fn sweep_locked(entries: &mut HashMap<u64, Entry>, now: Instant, ttl: Duration) -> Vec<u64> {
        let expired: Vec<u64> = entries
            .iter()
            .filter(|(_, e)| now.saturating_duration_since(e.last_touched) > ttl)
            .map(|(&id, _)| id)
            .collect();
        for id in &expired {
            entries.remove(id);
        }
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jim_core::{EngineOptions, StrategyKind};
    use jim_relation::Product;
    use jim_synth::flights;

    fn engine() -> Engine {
        let p = Product::new(vec![flights::flights(), flights::hotels()]).unwrap();
        Engine::new(p, &EngineOptions::default()).unwrap()
    }

    fn store(max: usize, ttl: Duration) -> SessionStore {
        SessionStore::new(StoreConfig {
            max_sessions: max,
            ttl,
            ..Default::default()
        })
    }

    fn create(s: &SessionStore) -> (u64, Option<u64>) {
        let kind = StrategyKind::LookaheadMinPrune;
        let (session, evicted) = s.create(engine(), kind.build(), kind.to_string());
        let id = session.lock().unwrap().id;
        (id, evicted)
    }

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let s = store(8, Duration::from_secs(60));
        let (a, _) = create(&s);
        let (b, _) = create(&s);
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids(), vec![a, b]);
        assert!(s.get(a).is_some());
        assert!(s.get(999).is_none());
        assert!(s.remove(a));
        assert!(!s.remove(a));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let s = store(2, Duration::from_secs(60));
        let (a, e1) = create(&s);
        let (b, e2) = create(&s);
        assert_eq!((e1, e2), (None, None));
        // Touch `a` so `b` becomes the LRU.
        assert!(s.get(a).is_some());
        let (c, evicted) = create(&s);
        assert_eq!(evicted, Some(b));
        assert_eq!(s.ids(), vec![a, c]);
    }

    #[test]
    fn lru_eviction_spans_shards() {
        // Sessions land in distinct shards (sequential ids, power-of-two
        // mask), yet the cap is global and the LRU victim is found across
        // all of them.
        let s = SessionStore::new(StoreConfig {
            max_sessions: 4,
            ttl: Duration::from_secs(60),
            shards: 4,
        });
        assert_eq!(s.num_shards(), 4);
        let ids: Vec<u64> = (0..4).map(|_| create(&s).0).collect();
        // Touch everything except the second session.
        for &id in ids.iter().filter(|&&id| id != ids[1]) {
            assert!(s.get(id).is_some());
        }
        let (e, evicted) = create(&s);
        assert_eq!(evicted, Some(ids[1]), "global LRU evicted across shards");
        assert_eq!(s.len(), 4);
        assert!(s.get(e).is_some());
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        let s = SessionStore::new(StoreConfig {
            shards: 5,
            ..Default::default()
        });
        assert_eq!(s.num_shards(), 8);
        let s = SessionStore::new(StoreConfig {
            shards: 0,
            ..Default::default()
        });
        assert_eq!(s.num_shards(), 1);
        assert!(create(&s).1.is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ttl_sweep_expires_idle_sessions() {
        let ttl = Duration::from_secs(60);
        let s = store(8, ttl);
        let (a, _) = create(&s);
        // Nothing expires "now".
        assert!(s.sweep_at(Instant::now()).is_empty());
        // Everything idle longer than the TTL expires at a future instant.
        let future = Instant::now() + ttl + Duration::from_secs(1);
        assert_eq!(s.sweep_at(future), vec![a]);
        assert!(s.is_empty());
        assert!(s.get(a).is_none());
    }

    #[test]
    fn ttl_sweep_walks_every_shard() {
        let ttl = Duration::from_secs(60);
        let s = SessionStore::new(StoreConfig {
            max_sessions: 16,
            ttl,
            shards: 4,
        });
        let ids: Vec<u64> = (0..6).map(|_| create(&s).0).collect();
        let future = Instant::now() + ttl + Duration::from_secs(1);
        assert_eq!(s.sweep_at(future), ids, "all shards swept, ids ascending");
        assert!(s.is_empty());
    }

    #[test]
    fn peek_does_not_refresh_the_ttl_stamp() {
        let ttl = Duration::from_secs(60);
        let s = store(8, ttl);
        let (a, _) = create(&s);
        // Observe via peek only; the session must still expire on a sweep
        // past its creation-time stamp.
        assert!(s.peek(a).is_some());
        let future = Instant::now() + ttl + Duration::from_secs(1);
        assert!(s.peek(a).is_some());
        assert_eq!(s.sweep_at(future), vec![a]);
        assert!(s.peek(999).is_none());
    }

    #[test]
    fn session_survives_across_handle_drops() {
        let s = store(8, Duration::from_secs(60));
        let (id, _) = create(&s);
        {
            let h = s.get(id).unwrap();
            let mut guard = h.lock().unwrap();
            let session = &mut *guard;
            let pick = jim_core::strategy::choose_next(session.strategy.as_mut(), &session.engine)
                .unwrap();
            session.pending = Some(pick);
        }
        let h = s.get(id).unwrap();
        assert!(h.lock().unwrap().pending.is_some());
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let s = Arc::new(store(16, Duration::from_secs(60)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let (id, _) = create(&s);
                    assert!(s.get(id).is_some());
                    id
                })
            })
            .collect();
        let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(s.len(), 4);
    }
}
