//! Integration tests for the service layer, speaking the wire protocol
//! against an in-memory handler (the "duplex transport": request line in,
//! response line out, no socket).

#![forbid(unsafe_code)]

use jim_core::{Engine, EngineOptions, Transcript};
use jim_json::Json;
use jim_relation::Product;
use jim_server::handler::{Handler, ServerLimits};
use jim_server::store::{SessionStore, StoreConfig};
use jim_synth::flights;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn handler_with(config: StoreConfig) -> Handler {
    Handler::new(Arc::new(SessionStore::new(config)))
}

fn handler() -> Handler {
    handler_with(StoreConfig::default())
}

fn send(h: &Handler, line: &str) -> Json {
    let response = h.handle_line(line);
    let json = Json::parse(&response).expect("response is valid JSON");
    assert!(
        json.get("ok").is_some(),
        "response carries `ok`: {response}"
    );
    json
}

fn expect_ok(h: &Handler, line: &str) -> Json {
    let json = send(h, line);
    assert_eq!(
        json.get("ok").unwrap().as_bool(),
        Some(true),
        "{line} -> {json}"
    );
    json
}

/// The paper's Figure 1 instance as inline CSV (hotels' missing discount is
/// an empty field, which the CSV reader maps to NULL).
const CREATE_FLIGHTS_INLINE: &str = r#"{"op":"CreateSession","source":{"relations":[{"name":"flights","csv":"From,To,Airline\nParis,Lille,AF\nLille,NYC,AA\nNYC,Paris,AA\nParis,NYC,AF\n"},{"name":"hotels","csv":"City,Discount\nNYC,AA\nParis,\nLille,AF\n"}]},"strategy":"LookaheadMinPrune"}"#;

/// Answer truthfully for `Q2: To ≍ City ∧ Airline ≍ Discount`, reading the
/// rendered values off the wire (columns: From, To, Airline, City, Discount).
fn q2_label(values: &[Json]) -> char {
    let v: Vec<&str> = values.iter().map(|v| v.as_str().unwrap()).collect();
    if v[1] == v[3] && v[2] == v[4] {
        '+'
    } else {
        '-'
    }
}

/// Drive a session to resolution over the protocol; returns the final
/// (resolved) response and the number of questions answered.
fn drive_to_resolution(h: &Handler, session: u64, label: impl Fn(&[Json]) -> char) -> (Json, u64) {
    let mut interactions = 0u64;
    loop {
        let q = expect_ok(
            h,
            &format!(r#"{{"op":"NextQuestion","session":{session}}}"#),
        );
        if q.get("resolved").unwrap().as_bool() == Some(true) {
            return (q, interactions);
        }
        let sign = label(q.get("values").unwrap().as_array().unwrap());
        let a = expect_ok(
            h,
            &format!(r#"{{"op":"Answer","session":{session},"label":"{sign}"}}"#),
        );
        interactions += 1;
        assert!(interactions <= 12, "runaway session");
        if a.get("resolved").unwrap().as_bool() == Some(true) {
            return (a, interactions);
        }
    }
}

#[test]
fn full_flights_session_to_sql() {
    let h = handler();
    let r = expect_ok(&h, CREATE_FLIGHTS_INLINE);
    let session = r.get("session").unwrap().as_u64().unwrap();
    assert_eq!(r.get("tuples").unwrap().as_u64(), Some(12));
    assert_eq!(
        r.get("columns").unwrap().as_array().unwrap()[1].as_str(),
        Some("flights.To")
    );

    let (resolved, interactions) = drive_to_resolution(&h, session, q2_label);
    assert!(
        interactions >= 2,
        "Q2 needs at least a positive and a negative"
    );
    assert!(
        interactions <= 6,
        "lookahead should stay within the paper's budget"
    );
    let sql = resolved.get("sql").unwrap().as_str().unwrap();
    assert!(sql.contains("r1.To = r2.City"), "{sql}");
    assert!(sql.contains("r1.Airline = r2.Discount"), "{sql}");

    // The Sql op agrees after resolution, and adds the GAV view.
    let s = expect_ok(&h, &format!(r#"{{"op":"Sql","session":{session}}}"#));
    assert_eq!(s.get("resolved").unwrap().as_bool(), Some(true));
    assert_eq!(s.get("sql").unwrap().as_str(), Some(sql));
    assert!(s
        .get("gav")
        .unwrap()
        .as_str()
        .unwrap()
        .contains(":- flights("));

    // Stats adds up: everything labeled or pruned.
    let stats = expect_ok(&h, &format!(r#"{{"op":"Stats","session":{session}}}"#));
    let labeled = stats.get("labeled_positive").unwrap().as_u64().unwrap()
        + stats.get("labeled_negative").unwrap().as_u64().unwrap();
    assert_eq!(labeled, interactions);
    assert_eq!(
        labeled + stats.get("pruned").unwrap().as_u64().unwrap(),
        stats.get("total_tuples").unwrap().as_u64().unwrap()
    );
    assert_eq!(stats.get("informative").unwrap().as_u64(), Some(0));

    // Close; the session is then gone.
    expect_ok(
        &h,
        &format!(r#"{{"op":"CloseSession","session":{session}}}"#),
    );
    let gone = send(&h, &format!(r#"{{"op":"Stats","session":{session}}}"#));
    assert_eq!(gone.get("ok").unwrap().as_bool(), Some(false));
}

#[test]
fn wire_transcript_replays_into_a_fresh_local_engine() {
    let h = handler();
    let r = expect_ok(&h, CREATE_FLIGHTS_INLINE);
    let session = r.get("session").unwrap().as_u64().unwrap();
    drive_to_resolution(&h, session, q2_label);

    let t = expect_ok(&h, &format!(r#"{{"op":"Transcript","session":{session}}}"#));
    let transcript = Transcript::from_json(t.get("transcript").unwrap()).unwrap();
    assert_eq!(transcript.tuples, 12);

    // Replay locally: the replayed session resolves to a predicate
    // instance-equivalent to the goal Q2.
    let product = Product::new(vec![flights::flights(), flights::hotels()]).unwrap();
    let mut engine = Engine::new(product, &EngineOptions::default()).unwrap();
    transcript.replay(&mut engine).unwrap();
    assert!(engine.is_resolved());
    let goal = flights::q2(engine.universe());
    assert!(engine
        .result()
        .instance_equivalent(&goal, engine.product())
        .unwrap());

    // The plain-text form round-trips through the v1 format too.
    let text = t.get("text").unwrap().as_str().unwrap();
    assert_eq!(Transcript::parse(text).unwrap(), transcript);
}

#[test]
fn two_sessions_interleave_without_interference() {
    let h = handler();
    // Session A infers Q1 (To ≍ City); session B infers Q2; different
    // strategies; requests strictly alternate on one handler.
    let a = expect_ok(&h, CREATE_FLIGHTS_INLINE)
        .get("session")
        .unwrap()
        .as_u64()
        .unwrap();
    let b = expect_ok(
        &h,
        &CREATE_FLIGHTS_INLINE.replace("LookaheadMinPrune", "local-general"),
    )
    .get("session")
    .unwrap()
    .as_u64()
    .unwrap();
    assert_ne!(a, b);

    let q1_label = |values: &[Json]| {
        let v: Vec<&str> = values.iter().map(|v| v.as_str().unwrap()).collect();
        if v[1] == v[3] {
            '+'
        } else {
            '-'
        }
    };

    let mut resolved_a = None;
    let mut resolved_b = None;
    for _ in 0..24 {
        for (session, done, label) in [
            (a, &mut resolved_a, &q1_label as &dyn Fn(&[Json]) -> char),
            (b, &mut resolved_b, &|v: &[Json]| q2_label(v)),
        ] {
            if done.is_some() {
                continue;
            }
            let q = expect_ok(
                &h,
                &format!(r#"{{"op":"NextQuestion","session":{session}}}"#),
            );
            if q.get("resolved").unwrap().as_bool() == Some(true) {
                *done = Some(q);
                continue;
            }
            let sign = label(q.get("values").unwrap().as_array().unwrap());
            let r = expect_ok(
                &h,
                &format!(r#"{{"op":"Answer","session":{session},"label":"{sign}"}}"#),
            );
            if r.get("resolved").unwrap().as_bool() == Some(true) {
                *done = Some(r);
            }
        }
        if resolved_a.is_some() && resolved_b.is_some() {
            break;
        }
    }

    let sql_a = resolved_a.expect("A resolved");
    let sql_a = sql_a.get("sql").unwrap().as_str().unwrap();
    assert!(sql_a.contains("r1.To = r2.City"), "{sql_a}");
    assert!(!sql_a.contains("Discount"), "Q1 has one atom: {sql_a}");
    let sql_b = resolved_b.expect("B resolved");
    let sql_b = sql_b.get("sql").unwrap().as_str().unwrap();
    assert!(sql_b.contains("r1.Airline = r2.Discount"), "{sql_b}");
}

#[test]
fn concurrent_sessions_from_many_threads() {
    let h = Arc::new(handler());
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                let strategy = if i % 2 == 0 {
                    "lookahead-minprune"
                } else {
                    "local-general"
                };
                let create = CREATE_FLIGHTS_INLINE.replace("LookaheadMinPrune", strategy);
                let r = expect_ok(&h, &create);
                let session = r.get("session").unwrap().as_u64().unwrap();
                let (resolved, _) = drive_to_resolution(&h, session, q2_label);
                let sql = resolved.get("sql").unwrap().as_str().unwrap().to_string();
                assert!(sql.contains("r1.To = r2.City"), "{sql}");
                session
            })
        })
        .collect();
    let ids: Vec<u64> = handles.into_iter().map(|t| t.join().unwrap()).collect();
    let distinct: std::collections::HashSet<_> = ids.iter().collect();
    assert_eq!(distinct.len(), 8, "every thread got its own session");
}

#[test]
fn lru_eviction_when_over_capacity() {
    let h = handler_with(StoreConfig {
        max_sessions: 2,
        ttl: Duration::from_secs(600),
        ..Default::default()
    });
    let a = expect_ok(&h, CREATE_FLIGHTS_INLINE)
        .get("session")
        .unwrap()
        .as_u64()
        .unwrap();
    let b = expect_ok(&h, CREATE_FLIGHTS_INLINE)
        .get("session")
        .unwrap()
        .as_u64()
        .unwrap();
    // Touch `a` so `b` is the LRU victim.
    expect_ok(&h, &format!(r#"{{"op":"Stats","session":{a}}}"#));
    let r = expect_ok(&h, CREATE_FLIGHTS_INLINE);
    assert_eq!(
        r.get("evicted").unwrap().as_u64(),
        Some(b),
        "LRU session evicted"
    );
    let gone = send(&h, &format!(r#"{{"op":"NextQuestion","session":{b}}}"#));
    assert_eq!(gone.get("ok").unwrap().as_bool(), Some(false));
    // `a` survived.
    expect_ok(&h, &format!(r#"{{"op":"Stats","session":{a}}}"#));
    // ListSessions shows exactly the two survivors.
    let list = expect_ok(&h, r#"{"op":"ListSessions"}"#);
    assert_eq!(list.get("sessions").unwrap().as_array().unwrap().len(), 2);
}

#[test]
fn ttl_eviction_of_an_expired_session() {
    let ttl = Duration::from_secs(60);
    let h = handler_with(StoreConfig {
        max_sessions: 8,
        ttl,
        ..Default::default()
    });
    let r = expect_ok(&h, CREATE_FLIGHTS_INLINE);
    let session = r.get("session").unwrap().as_u64().unwrap();

    // A mid-session state survives a sweep "now"...
    expect_ok(
        &h,
        &format!(r#"{{"op":"NextQuestion","session":{session}}}"#),
    );
    assert!(h.store().sweep_at(Instant::now()).is_empty());

    // ...but an idle session is swept once past its TTL (synthetic clock —
    // the server's sweeper thread does this with the real one).
    let future = Instant::now() + ttl + Duration::from_secs(1);
    assert_eq!(h.store().sweep_at(future), vec![session]);
    let gone = send(
        &h,
        &format!(r#"{{"op":"Answer","session":{session},"label":"+"}}"#),
    );
    assert_eq!(gone.get("ok").unwrap().as_bool(), Some(false));
    assert!(gone
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("expired"));
}

#[test]
fn next_question_after_free_label_resolution_reports_resolved() {
    // Regression: a pending question must not be re-proposed after the
    // session resolved through explicit-tuple answers that pruned (rather
    // than labeled) the pending tuple.
    let h = handler();
    let r = expect_ok(&h, CREATE_FLIGHTS_INLINE);
    let session = r.get("session").unwrap().as_u64().unwrap();

    // Park a pending question.
    let q = expect_ok(
        &h,
        &format!(r#"{{"op":"NextQuestion","session":{session}}}"#),
    );
    assert_eq!(q.get("resolved").unwrap().as_bool(), Some(false));

    // Resolve the whole session by free labeling the paper's walkthrough
    // tuples (ranks 2+, 6-, 7-) without ever answering the pending one.
    for (rank, sign) in [(2u64, '+'), (6, '-'), (7, '-')] {
        let a = send(
            &h,
            &format!(r#"{{"op":"Answer","session":{session},"tuple":{rank},"label":"{sign}"}}"#),
        );
        // The pending tuple may coincide with a walkthrough rank; labels
        // stay consistent either way.
        assert_eq!(a.get("ok").unwrap().as_bool(), Some(true), "{a}");
    }

    let done = expect_ok(
        &h,
        &format!(r#"{{"op":"NextQuestion","session":{session}}}"#),
    );
    assert_eq!(
        done.get("resolved").unwrap().as_bool(),
        Some(true),
        "{done}"
    );
    assert!(done
        .get("sql")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("r1.Airline = r2.Discount"));
}

#[test]
fn list_sessions_does_not_keep_idle_sessions_alive() {
    let ttl = Duration::from_secs(60);
    let h = handler_with(StoreConfig {
        max_sessions: 8,
        ttl,
        ..Default::default()
    });
    let r = expect_ok(&h, CREATE_FLIGHTS_INLINE);
    let session = r.get("session").unwrap().as_u64().unwrap();

    // A monitoring poller listing sessions must not refresh TTL stamps.
    let list = expect_ok(&h, r#"{"op":"ListSessions"}"#);
    assert_eq!(list.get("sessions").unwrap().as_array().unwrap().len(), 1);
    let future = Instant::now() + ttl + Duration::from_secs(1);
    assert_eq!(h.store().sweep_at(future), vec![session]);
}

#[test]
fn client_cannot_raise_the_product_size_guard() {
    // 30 rows self-joined 3 ways = 27,000 tuples, over a 500-tuple server
    // ceiling; a client-supplied huge max_product must not lift it — under
    // `force_sample` the session opens over a *sample* of exactly the
    // ceiling instead.
    let mut csv = String::from("x\n");
    for i in 0..30 {
        csv.push_str(&format!("{i}\n"));
    }
    let h = Handler::with_limits(
        Arc::new(SessionStore::new(StoreConfig::default())),
        ServerLimits {
            max_product: 500,
            ..Default::default()
        },
    );
    let line = format!(
        r#"{{"op":"CreateSession","source":{{"relations":[{{"name":"r","csv":"{}"}}],"view":["r","r","r"]}},"max_product":18446744073709551615,"force_sample":true}}"#,
        csv.replace('\n', "\\n")
    );
    let r = expect_ok(&h, &line);
    assert_eq!(r.get("sampled").unwrap().as_bool(), Some(true), "{r}");
    assert_eq!(
        r.get("tuples").unwrap().as_u64(),
        Some(500),
        "sample size clamped to the server ceiling: {r}"
    );
    // Without force_sample the same oversized product opens factorized,
    // at full fidelity — all 27,000 tuples despite the 500 ceiling.
    let r = expect_ok(&h, &line.replace(r#","force_sample":true"#, ""));
    assert_eq!(r.get("factorized").unwrap().as_bool(), Some(true), "{r}");
    assert_eq!(r.get("sampled").unwrap().as_bool(), Some(false), "{r}");
    assert_eq!(r.get("tuples").unwrap().as_u64(), Some(27_000), "{r}");
    // Lowering the guard shrinks the sample further.
    let lowered = CREATE_FLIGHTS_INLINE.replace(
        r#""strategy":"LookaheadMinPrune""#,
        r#""strategy":"LookaheadMinPrune","max_product":4,"force_sample":true"#,
    );
    let r = expect_ok(&h, &lowered);
    assert_eq!(r.get("sampled").unwrap().as_bool(), Some(true), "{r}");
    assert_eq!(r.get("tuples").unwrap().as_u64(), Some(4), "{r}");
    // A zero guard is rejected outright.
    let zeroed = CREATE_FLIGHTS_INLINE.replace(
        r#""strategy":"LookaheadMinPrune""#,
        r#""strategy":"LookaheadMinPrune","max_product":0"#,
    );
    let r = send(&h, &zeroed);
    assert_eq!(r.get("ok").unwrap().as_bool(), Some(false), "{r}");
}

#[test]
fn sampled_session_resolves_end_to_end() {
    // A product over the limit opens via sampling (explicit opt-in) and
    // still drives the whole inference loop to resolution over the wire.
    let h = handler();
    let line = CREATE_FLIGHTS_INLINE.replace(
        r#""strategy":"LookaheadMinPrune""#,
        r#""strategy":"LookaheadMinPrune","max_product":9,"sample_seed":5,"force_sample":true"#,
    );
    let r = expect_ok(&h, &line);
    assert_eq!(r.get("sampled").unwrap().as_bool(), Some(true), "{r}");
    assert_eq!(r.get("tuples").unwrap().as_u64(), Some(9));
    let session = r.get("session").unwrap().as_u64().unwrap();
    let (resolved, interactions) = drive_to_resolution(&h, session, q2_label);
    assert!(interactions >= 1);
    // The inferred predicate is consistent with every (truthful) answer on
    // the sample; on this instance 9 of 12 tuples pin Q2 or a superset.
    assert!(resolved.get("sql").unwrap().as_str().is_some());
    let stats = expect_ok(&h, &format!(r#"{{"op":"Stats","session":{session}}}"#));
    assert_eq!(stats.get("sampled").unwrap().as_bool(), Some(true));
    assert_eq!(stats.get("total_tuples").unwrap().as_u64(), Some(9));
}

#[test]
fn top_k_free_labeling_and_explain() {
    let h = handler();
    let r = expect_ok(&h, CREATE_FLIGHTS_INLINE);
    let session = r.get("session").unwrap().as_u64().unwrap();

    let batch = expect_ok(&h, &format!(r#"{{"op":"TopK","session":{session},"k":3}}"#));
    let tuples = batch.get("tuples").unwrap().as_array().unwrap();
    assert_eq!(tuples.len(), 3);

    // Free-label every batch entry by explicit rank, Figure 3.3 style.
    for t in tuples {
        let rank = t.get("tuple").unwrap().as_u64().unwrap();
        let sign = q2_label(t.get("values").unwrap().as_array().unwrap());
        let r = send(
            &h,
            &format!(r#"{{"op":"Answer","session":{session},"tuple":{rank},"label":"{sign}"}}"#),
        );
        // Batch answers may become uninformative mid-batch; the engine
        // rejects only *inconsistent* labels, which truthful ones never are.
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r}");
    }

    // Explain one labeled tuple: it is certain now, with a reason.
    let first = tuples[0].get("tuple").unwrap().as_u64().unwrap();
    let e = expect_ok(
        &h,
        &format!(r#"{{"op":"Explain","session":{session},"tuple":{first}}}"#),
    );
    let class = e.get("class").unwrap().as_str().unwrap();
    assert!(class.starts_with("Certain"), "{class}");
    assert!(!e.get("explanation").unwrap().as_str().unwrap().is_empty());

    // Double labeling is rejected cleanly.
    let dup = send(
        &h,
        &format!(r#"{{"op":"Answer","session":{session},"tuple":{first},"label":"+"}}"#),
    );
    assert_eq!(dup.get("ok").unwrap().as_bool(), Some(false));
    assert!(dup
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("already labeled"));
}
