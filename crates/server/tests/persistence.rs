//! Durable sessions end to end: the write-ahead journal under a data
//! directory, evict-to-disk, transparent resume-by-replay, the explicit
//! `ResumeSession` op, and the kill-and-restart story — a **fresh store
//! over the same directory** picks up the sessions a dead process left
//! behind and drives them to the paper's query.

#![forbid(unsafe_code)]

mod support;

use jim_json::Json;
use jim_server::handler::Handler;
use jim_server::journal::JournalStore;
use jim_server::serve::Transport;
use jim_server::store::{SessionStore, StoreConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use support::{transports, Client, TestServer};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jim-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn journaled_handler(dir: &PathBuf, ttl: Duration) -> Handler {
    let store = SessionStore::with_journal(
        StoreConfig {
            max_sessions: 8,
            ttl,
            ..Default::default()
        },
        JournalStore::open(dir).expect("journal dir"),
    );
    Handler::new(Arc::new(store))
}

fn send(h: &Handler, line: &str) -> Json {
    Json::parse(&h.handle_line(line)).expect("valid JSON response")
}

fn expect_ok(h: &Handler, line: &str) -> Json {
    let r = send(h, line);
    assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{line} -> {r}");
    r
}

/// The truthful Q2 label (To ≍ City ∧ Airline ≍ Discount) off rendered
/// flights×hotels values.
fn q2_label(values: &[Json]) -> char {
    let v: Vec<&str> = values.iter().map(|v| v.as_str().unwrap()).collect();
    if v[1] == v[3] && v[2] == v[4] {
        '+'
    } else {
        '-'
    }
}

#[test]
fn create_session_reports_persistence() {
    // With a data dir the session is durable from birth…
    let dir = tmpdir("flag");
    let h = journaled_handler(&dir, Duration::from_secs(600));
    let r = expect_ok(
        &h,
        r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
    );
    assert_eq!(r.get("persisted").unwrap().as_bool(), Some(true), "{r}");
    let id = r.get("session").unwrap().as_u64().unwrap();
    assert!(h.store().journal().unwrap().contains(id));

    // …without one it is memory-only and says so.
    let bare = Handler::new(Arc::new(SessionStore::new(StoreConfig::default())));
    let r = expect_ok(
        &bare,
        r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
    );
    assert_eq!(r.get("persisted").unwrap().as_bool(), Some(false), "{r}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evicted_session_is_transparently_usable_by_id() {
    // The acceptance bar: a session evicted by TTL under --data-dir keeps
    // answering requests by id with NO explicit resume call.
    let ttl = Duration::from_secs(60);
    let dir = tmpdir("transparent");
    let h = journaled_handler(&dir, ttl);
    let r = expect_ok(
        &h,
        r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
    );
    let id = r.get("session").unwrap().as_u64().unwrap();
    expect_ok(
        &h,
        &format!(r#"{{"op":"Answer","session":{id},"tuple":2,"label":"+"}}"#),
    );

    // Evict; the session leaves memory but ListSessions still knows it.
    let future = Instant::now() + ttl + Duration::from_secs(1);
    assert_eq!(h.store().sweep_at(future), vec![id]);
    let list = expect_ok(&h, r#"{"op":"ListSessions"}"#);
    let sessions = list.get("sessions").unwrap().as_array().unwrap();
    assert_eq!(sessions.len(), 1);
    assert_eq!(sessions[0].get("resident").unwrap().as_bool(), Some(false));
    assert_eq!(sessions[0].get("interactions").unwrap().as_u64(), Some(1));
    assert_eq!(list.get("evicted_total").unwrap().as_u64(), Some(1));
    assert_eq!(list.get("persisted_total").unwrap().as_u64(), Some(1));

    // Keep labeling the evicted id as if nothing happened.
    let a = expect_ok(
        &h,
        &format!(
            r#"{{"op":"AnswerBatch","session":{id},"labels":[{{"tuple":6,"label":"-"}},{{"tuple":7,"label":"-"}}]}}"#
        ),
    );
    assert_eq!(a.get("resolved").unwrap().as_bool(), Some(true), "{a}");
    assert!(a
        .get("sql")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("r1.To = r2.City"));
    let s = expect_ok(&h, &format!(r#"{{"op":"Stats","session":{id}}}"#));
    assert_eq!(s.get("interactions").unwrap().as_u64(), Some(3));

    // Now resident again.
    let list = expect_ok(&h, r#"{"op":"ListSessions"}"#);
    let sessions = list.get("sessions").unwrap().as_array().unwrap();
    assert_eq!(sessions[0].get("resident").unwrap().as_bool(), Some(true));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_session_op_reports_shape_and_close_destroys() {
    let ttl = Duration::from_secs(60);
    let dir = tmpdir("resumeop");
    let h = journaled_handler(&dir, ttl);
    let r = expect_ok(
        &h,
        r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"local-general"}"#,
    );
    let id = r.get("session").unwrap().as_u64().unwrap();
    expect_ok(
        &h,
        &format!(r#"{{"op":"Answer","session":{id},"tuple":2,"label":"+"}}"#),
    );
    h.store()
        .sweep_at(Instant::now() + ttl + Duration::from_secs(1));

    // Explicit resume: shape + progress come back, like CreateSession.
    let r = expect_ok(&h, &format!(r#"{{"op":"ResumeSession","session":{id}}}"#));
    assert_eq!(r.get("tuples").unwrap().as_u64(), Some(12));
    assert_eq!(r.get("interactions").unwrap().as_u64(), Some(1));
    assert_eq!(r.get("resolved").unwrap().as_bool(), Some(false));
    assert_eq!(r.get("persisted").unwrap().as_bool(), Some(true));
    assert_eq!(r.get("strategy").unwrap().as_str(), Some("local-general"));
    assert_eq!(r.get("columns").unwrap().as_array().unwrap().len(), 5);
    // Resuming a resident session is idempotent.
    let again = expect_ok(&h, &format!(r#"{{"op":"ResumeSession","session":{id}}}"#));
    assert_eq!(again.get("interactions").unwrap().as_u64(), Some(1));

    // CloseSession is destruction: the journal is deleted, and neither
    // transparent nor explicit resume can bring the session back.
    expect_ok(&h, &format!(r#"{{"op":"CloseSession","session":{id}}}"#));
    assert!(!h.store().journal().unwrap().contains(id));
    let gone = send(&h, &format!(r#"{{"op":"Stats","session":{id}}}"#));
    assert_eq!(gone.get("ok").unwrap().as_bool(), Some(false));
    let gone = send(&h, &format!(r#"{{"op":"ResumeSession","session":{id}}}"#));
    assert_eq!(gone.get("ok").unwrap().as_bool(), Some(false));
    assert!(gone
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("no journal"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_trailing_journal_line_resumes_one_batch_short() {
    // A torn write (process died mid-append) must not fail the resume:
    // the corrupt tail is skipped with a warning and the session resumes
    // at the previous batch boundary, fully usable.
    let ttl = Duration::from_secs(60);
    let dir = tmpdir("torn");
    let h = journaled_handler(&dir, ttl);
    let r = expect_ok(
        &h,
        r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
    );
    let id = r.get("session").unwrap().as_u64().unwrap();
    expect_ok(
        &h,
        &format!(r#"{{"op":"Answer","session":{id},"tuple":2,"label":"+"}}"#),
    );
    expect_ok(
        &h,
        &format!(r#"{{"op":"Answer","session":{id},"tuple":6,"label":"-"}}"#),
    );
    h.store()
        .sweep_at(Instant::now() + ttl + Duration::from_secs(1));

    // Truncate the journal mid-way through its last line.
    let path = h.store().journal().unwrap().path(id);
    let text = std::fs::read_to_string(&path).unwrap();
    let cut = text.trim_end().len() - 7;
    std::fs::write(&path, &text[..cut]).unwrap();

    let r = expect_ok(&h, &format!(r#"{{"op":"ResumeSession","session":{id}}}"#));
    assert_eq!(
        r.get("interactions").unwrap().as_u64(),
        Some(1),
        "the torn second batch is gone, the first survives: {r}"
    );
    // The lost label can simply be given again, and the session finishes.
    let a = expect_ok(
        &h,
        &format!(
            r#"{{"op":"AnswerBatch","session":{id},"labels":[{{"tuple":6,"label":"-"}},{{"tuple":7,"label":"-"}}]}}"#
        ),
    );
    assert_eq!(a.get("resolved").unwrap().as_bool(), Some(true), "{a}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_middle_journal_line_is_a_surfaced_error_not_a_silent_skip() {
    let ttl = Duration::from_secs(60);
    let dir = tmpdir("hole");
    let h = journaled_handler(&dir, ttl);
    let r = expect_ok(
        &h,
        r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
    );
    let id = r.get("session").unwrap().as_u64().unwrap();
    for (t, l) in [(2, '+'), (6, '-')] {
        expect_ok(
            &h,
            &format!(r#"{{"op":"Answer","session":{id},"tuple":{t},"label":"{l}"}}"#),
        );
    }
    h.store()
        .sweep_at(Instant::now() + ttl + Duration::from_secs(1));

    // Corrupt the *first* batch line — a hole, not a torn tail.
    let path = h.store().journal().unwrap().path(id);
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    lines[1] = r#"{"labels":[{"#;
    std::fs::write(&path, lines.join("\n")).unwrap();

    let r = send(&h, &format!(r#"{{"op":"ResumeSession","session":{id}}}"#));
    assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
    assert!(
        r.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("corrupt"),
        "{r}"
    );
    // Transparent access misses too (logged server-side).
    let gone = send(&h, &format!(r#"{{"op":"Stats","session":{id}}}"#));
    assert_eq!(gone.get("ok").unwrap().as_bool(), Some(false));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_transcript_with_origin_is_self_contained() {
    // A persisted session's Transcript carries its origin: anyone holding
    // just that JSON document can rebuild the instance from nothing and
    // replay the labels in one batched pass — no server, no journal.
    let dir = tmpdir("selfcontained");
    let h = journaled_handler(&dir, Duration::from_secs(600));
    let r = expect_ok(
        &h,
        r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#,
    );
    let id = r.get("session").unwrap().as_u64().unwrap();
    for (t, l) in [(2, '+'), (6, '-'), (7, '-')] {
        expect_ok(
            &h,
            &format!(r#"{{"op":"Answer","session":{id},"tuple":{t},"label":"{l}"}}"#),
        );
    }
    let t = expect_ok(&h, &format!(r#"{{"op":"Transcript","session":{id}}}"#));
    let transcript =
        jim_core::Transcript::from_json(t.get("transcript").unwrap()).expect("decodes");
    let origin = transcript.origin.clone().expect("origin attached");

    let mut engine = jim_server::journal::build_engine(&origin).expect("origin rebuilds");
    assert_eq!(transcript.replay_batched(&mut engine).unwrap(), 3);
    assert!(engine.is_resolved());
    assert!(engine
        .result()
        .to_sql()
        .contains("r1.Airline = r2.Discount"));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------- real TCP

/// A `jim-serve --data-dir <dir> --transport <t>` equivalent on an
/// OS-assigned port.
fn start_server_over(dir: &PathBuf, transport: Transport) -> TestServer {
    let store = SessionStore::with_journal(
        StoreConfig {
            max_sessions: 8,
            ttl: Duration::from_secs(600),
            ..Default::default()
        },
        JournalStore::open(dir).expect("journal dir"),
    );
    TestServer::start(transport, Arc::new(Handler::new(Arc::new(store))))
}

#[test]
fn kill_and_restart_resumes_to_resolution_over_tcp() {
    for transport in transports() {
        kill_and_restart(transport);
    }
}

fn kill_and_restart(transport: Transport) {
    let dir = tmpdir(&format!("restart-{transport}"));

    // Process 1: create a durable session, give the paper's first label,
    // then "die" — a **graceful shutdown** here, so the first server's
    // accept loop and sweeper are gone before the second server starts
    // (this used to leak both for the process lifetime).
    let session = {
        let server = start_server_over(&dir, transport);
        let mut client = Client::connect(server.addr);
        let r = client.send(
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
        );
        assert_eq!(r.get("persisted").unwrap().as_bool(), Some(true), "{r}");
        let session = r.get("session").unwrap().as_u64().unwrap();
        let a = client.send(&format!(
            r#"{{"op":"Answer","session":{session},"tuple":2,"label":"+"}}"#
        ));
        assert_eq!(a.get("resolved").unwrap().as_bool(), Some(false));
        session
    };

    // Process 2: a fresh store over the same directory. The session is
    // listed as on-disk, resumes with its label replayed, and the
    // remaining questions drive it to the paper's Q2.
    let server = start_server_over(&dir, transport);
    let mut client = Client::connect(server.addr);
    let list = client.send(r#"{"op":"ListSessions"}"#);
    let sessions = list.get("sessions").unwrap().as_array().unwrap();
    assert_eq!(sessions.len(), 1, "{list}");
    assert_eq!(sessions[0].get("session").unwrap().as_u64(), Some(session));
    assert_eq!(sessions[0].get("resident").unwrap().as_bool(), Some(false));

    let r = client.send(&format!(r#"{{"op":"ResumeSession","session":{session}}}"#));
    assert_eq!(r.get("interactions").unwrap().as_u64(), Some(1), "{r}");
    assert_eq!(r.get("resolved").unwrap().as_bool(), Some(false));

    let mut sql = None;
    for _ in 0..12 {
        let q = client.send(&format!(r#"{{"op":"NextQuestion","session":{session}}}"#));
        if q.get("resolved").unwrap().as_bool() == Some(true) {
            sql = Some(q.get("sql").unwrap().as_str().unwrap().to_string());
            break;
        }
        let sign = q2_label(q.get("values").unwrap().as_array().unwrap());
        let a = client.send(&format!(
            r#"{{"op":"Answer","session":{session},"label":"{sign}"}}"#
        ));
        if a.get("resolved").unwrap().as_bool() == Some(true) {
            sql = Some(a.get("sql").unwrap().as_str().unwrap().to_string());
            break;
        }
    }
    let sql = sql.expect("resumed session resolves");
    assert!(sql.contains("r1.To = r2.City"), "{sql}");
    assert!(sql.contains("r1.Airline = r2.Discount"), "{sql}");

    // Stats of the resumed run count the pre-restart label too.
    let s = client.send(&format!(r#"{{"op":"Stats","session":{session}}}"#));
    assert!(s.get("interactions").unwrap().as_u64().unwrap() >= 2);
    assert_eq!(s.get("resolved").unwrap().as_bool(), Some(true));

    // A new session on the restarted server gets a fresh id past the
    // resumed one (no collision with the dead process's allocations).
    let r = client.send(r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#);
    assert!(r.get("session").unwrap().as_u64().unwrap() > session);

    client.send(&format!(r#"{{"op":"CloseSession","session":{session}}}"#));
    let _ = std::fs::remove_dir_all(&dir);
}
