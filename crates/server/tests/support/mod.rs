//! Shared harness for the real-TCP integration suites: a [`TestServer`]
//! that runs `serve()` on an OS-assigned port with an explicit graceful
//! [`Shutdown`] (triggered and joined on drop, so test servers no longer
//! leak accept/sweeper threads for the process lifetime), plus the
//! transport matrix every wire test runs against.

#![allow(dead_code)] // each test binary uses its own subset

use jim_json::Json;
use jim_server::handler::Handler;
use jim_server::serve::{serve_with, spawn_sweeper, Shutdown, Transport, TransportLimits};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// The transports this run exercises. Defaults to **both** so every
/// wire test pins threads/epoll behavioral parity in one `cargo test`;
/// CI narrows with `JIM_TEST_TRANSPORT=threads|epoll` to prove each
/// passes the whole suite on its own. Epoll is skipped where `jim-aio`
/// has no backend.
pub fn transports() -> Vec<Transport> {
    let requested = std::env::var("JIM_TEST_TRANSPORT").unwrap_or_default();
    let all = match requested.as_str() {
        "threads" => vec![Transport::Threads],
        "epoll" => vec![Transport::Epoll],
        "" | "both" => vec![Transport::Threads, Transport::Epoll],
        other => panic!("JIM_TEST_TRANSPORT={other:?}: expected threads|epoll|both"),
    };
    all.into_iter()
        .filter(|t| *t != Transport::Epoll || jim_aio::SUPPORTED)
        .collect()
}

/// A `jim-serve`-equivalent server over one transport, shut down (and
/// its serve + sweeper threads joined) when dropped.
pub struct TestServer {
    pub addr: SocketAddr,
    pub transport: Transport,
    shutdown: Shutdown,
    serve_thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    sweeper: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    /// Serve `handler` on an OS-assigned port, with a TTL sweeper and
    /// the default [`TransportLimits`] (these honor `JIM_REACTORS`, so
    /// the CI reactor matrix reaches every test through this path).
    pub fn start(transport: Transport, handler: Arc<Handler>) -> TestServer {
        TestServer::start_with_sweep(transport, handler, Duration::from_millis(200))
    }

    /// [`TestServer::start`] with an explicit sweep interval.
    pub fn start_with_sweep(
        transport: Transport,
        handler: Arc<Handler>,
        sweep: Duration,
    ) -> TestServer {
        TestServer::start_with_limits(transport, handler, sweep, TransportLimits::default())
    }

    /// [`TestServer::start`] with explicit [`TransportLimits`] — the
    /// admission-cap / idle-timeout / reactor-count tests pin theirs.
    pub fn start_with_limits(
        transport: Transport,
        handler: Arc<Handler>,
        sweep: Duration,
        limits: TransportLimits,
    ) -> TestServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind test port");
        let addr = listener.local_addr().expect("local addr");
        let shutdown = Shutdown::new();
        let sweeper = spawn_sweeper(handler.store(), sweep, shutdown.clone());
        let serve_shutdown = shutdown.clone();
        let serve_thread = std::thread::spawn(move || {
            serve_with(listener, handler, transport, serve_shutdown, limits)
        });
        TestServer {
            addr,
            transport,
            shutdown,
            serve_thread: Some(serve_thread),
            sweeper: Some(sweeper),
        }
    }

    /// Trigger the graceful shutdown and join both threads, returning
    /// what `serve` returned. Idempotent with [`Drop`].
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.shutdown_inner().expect("serve thread exited")
    }

    fn shutdown_inner(&mut self) -> Option<std::io::Result<()>> {
        self.shutdown.trigger();
        if let Some(sweeper) = self.sweeper.take() {
            sweeper.join().expect("sweeper thread panicked");
        }
        self.serve_thread
            .take()
            .map(|t| t.join().expect("serve thread panicked"))
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A JSON-lines TCP client against a [`TestServer`].
pub struct Client {
    pub reader: BufReader<TcpStream>,
    pub writer: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set timeout");
        stream.set_nodelay(true).expect("set nodelay");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    /// Send one request line, read one response line, assert `ok:true`.
    pub fn send(&mut self, line: &str) -> Json {
        let json = self.send_raw(line);
        assert_eq!(
            json.get("ok").and_then(Json::as_bool),
            Some(true),
            "{line} -> {json}"
        );
        json
    }

    /// `send` without the ok-assertion, for exercising error responses.
    pub fn send_raw(&mut self, line: &str) -> Json {
        // One write per request line (writeln! would split off the
        // newline and hand Nagle a reason to stall).
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write request");
        self.writer.flush().expect("flush request");
        self.read_response()
    }

    /// Read one response line off the wire (after a raw byte-level write).
    pub fn read_response(&mut self) -> Json {
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        Json::parse(response.trim()).expect("valid JSON response")
    }
}
