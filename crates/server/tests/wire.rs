//! End-to-end over the real wire: a `jim-serve`-equivalent TCP listener on
//! an OS-assigned port, driven by plain `TcpStream` clients speaking JSON
//! lines — the acceptance demo of the server PR. **Every test runs against
//! both transports** (thread-per-connection and the epoll event loop) via
//! `support::transports()`: the wire contract must be byte-identical no
//! matter which front end frames it. Two clients run complete
//! flights/hotels sessions concurrently with the `LookaheadMinPrune`
//! strategy, answer until `resolved`, and receive the goal join's SQL.

#![forbid(unsafe_code)]

mod support;

use jim_server::handler::{Handler, ServerLimits};
use jim_server::serve::Transport;
use jim_server::store::{SessionStore, StoreConfig};
use std::sync::Arc;
use std::time::Duration;
use support::{transports, Client, TestServer};

fn start_server(transport: Transport) -> TestServer {
    start_server_with_limits(transport, ServerLimits::default())
}

fn start_server_with_limits(transport: Transport, limits: ServerLimits) -> TestServer {
    let store = Arc::new(SessionStore::new(StoreConfig {
        max_sessions: 8,
        ttl: Duration::from_secs(600),
        ..Default::default()
    }));
    TestServer::start(transport, Arc::new(Handler::with_limits(store, limits)))
}

/// One complete interactive session, exactly as a scripted demo would run
/// it: create from the flights scenario, loop NextQuestion/Answer with the
/// truthful Q2 oracle, stop at `resolved`, return the inferred SQL.
fn run_session(addr: std::net::SocketAddr) -> String {
    let mut client = Client::connect(addr);
    let r = client.send(
        r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
    );
    let session = r.get("session").unwrap().as_u64().unwrap();
    assert_eq!(r.get("tuples").unwrap().as_u64(), Some(12));

    for _ in 0..12 {
        let q = client.send(&format!(r#"{{"op":"NextQuestion","session":{session}}}"#));
        if q.get("resolved").unwrap().as_bool() == Some(true) {
            let sql = q.get("sql").unwrap().as_str().unwrap().to_string();
            client.send(&format!(r#"{{"op":"CloseSession","session":{session}}}"#));
            return sql;
        }
        let values: Vec<&str> = q
            .get("values")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        // Truthful Q2 user: To ≍ City ∧ Airline ≍ Discount.
        let sign = if values[1] == values[3] && values[2] == values[4] {
            '+'
        } else {
            '-'
        };
        let a = client.send(&format!(
            r#"{{"op":"Answer","session":{session},"label":"{sign}"}}"#
        ));
        if a.get("resolved").unwrap().as_bool() == Some(true) {
            let sql = a.get("sql").unwrap().as_str().unwrap().to_string();
            client.send(&format!(r#"{{"op":"CloseSession","session":{session}}}"#));
            return sql;
        }
    }
    panic!("session did not resolve within the instance size");
}

#[test]
fn two_concurrent_sessions_over_tcp_infer_q2() {
    for transport in transports() {
        let server = start_server(transport);
        let addr = server.addr;

        let clients: Vec<_> = (0..2)
            .map(|_| std::thread::spawn(move || run_session(addr)))
            .collect();
        for client in clients {
            let sql = client.join().expect("client thread");
            assert!(sql.contains("r1.To = r2.City"), "{sql}");
            assert!(sql.contains("r1.Airline = r2.Discount"), "{sql}");
        }
    }
}

#[test]
fn oversized_product_samples_and_resolves_over_tcp() {
    // The setgame scenario is a 144-tuple self-join; with max_product 40
    // and `force_sample` the server must open the session over a 40-tuple
    // uniform sample instead of erroring, and the whole loop still runs
    // to resolution. (Without `force_sample` the same request opens
    // factorized at full fidelity — checked first.)
    for transport in transports() {
        let server = start_server(transport);
        let mut client = Client::connect(server.addr);
        let r = client.send(
            r#"{"op":"CreateSession","source":{"scenario":"setgame"},"strategy":"local-general","max_product":40}"#,
        );
        assert_eq!(r.get("factorized").unwrap().as_bool(), Some(true), "{r}");
        assert_eq!(r.get("tuples").unwrap().as_u64(), Some(144));
        let full = r.get("session").unwrap().as_u64().unwrap();
        client.send(&format!(r#"{{"op":"CloseSession","session":{full}}}"#));
        let r = client.send(
            r#"{"op":"CreateSession","source":{"scenario":"setgame"},"strategy":"local-general","max_product":40,"sample_seed":7,"force_sample":true}"#,
        );
        assert_eq!(r.get("sampled").unwrap().as_bool(), Some(true), "{r}");
        assert_eq!(r.get("tuples").unwrap().as_u64(), Some(40));
        let session = r.get("session").unwrap().as_u64().unwrap();

        // A user who wants the empty join answers every question negatively;
        // negatives on informative tuples are always consistent, and the
        // session must terminate within the number of distinct signatures.
        let mut resolved = false;
        for _ in 0..40 {
            let q = client.send(&format!(r#"{{"op":"NextQuestion","session":{session}}}"#));
            if q.get("resolved").unwrap().as_bool() == Some(true) {
                resolved = true;
                break;
            }
            let a = client.send(&format!(
                r#"{{"op":"Answer","session":{session},"label":"-"}}"#
            ));
            if a.get("resolved").unwrap().as_bool() == Some(true) {
                resolved = true;
                break;
            }
        }
        assert!(resolved, "sampled session did not resolve");
        let stats = client.send(&format!(r#"{{"op":"Stats","session":{session}}}"#));
        assert_eq!(stats.get("sampled").unwrap().as_bool(), Some(true));
        assert_eq!(stats.get("total_tuples").unwrap().as_u64(), Some(40));
        client.send(&format!(r#"{{"op":"CloseSession","session":{session}}}"#));
    }
}

/// The truthful Q2 label for one rendered flights×hotels tuple:
/// To ≍ City ∧ Airline ≍ Discount.
fn q2_label(values: &[&str]) -> char {
    if values[1] == values[3] && values[2] == values[4] {
        '+'
    } else {
        '-'
    }
}

#[test]
fn top_k_batches_answered_with_answer_batch_over_tcp() {
    // The batched interaction loop end to end: TopK proposes a batch, the
    // client answers the *whole* batch with one AnswerBatch request, one
    // propagation pass happens server-side, repeat until resolved.
    for transport in transports() {
        let server = start_server(transport);
        let mut client = Client::connect(server.addr);
        let r = client.send(
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
        );
        let session = r.get("session").unwrap().as_u64().unwrap();

        let mut rounds = 0;
        let sql = loop {
            rounds += 1;
            assert!(rounds <= 12, "batched session did not resolve");
            let batch = client.send(&format!(r#"{{"op":"TopK","session":{session},"k":3}}"#));
            if batch.get("resolved").unwrap().as_bool() == Some(true) {
                break batch.get("sql").unwrap().as_str().unwrap().to_string();
            }
            let labels: Vec<String> = batch
                .get("tuples")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|t| {
                    let id = t.get("tuple").unwrap().as_u64().unwrap();
                    let values: Vec<&str> = t
                        .get("values")
                        .unwrap()
                        .as_array()
                        .unwrap()
                        .iter()
                        .map(|v| v.as_str().unwrap())
                        .collect();
                    format!(r#"{{"tuple":{id},"label":"{}"}}"#, q2_label(&values))
                })
                .collect();
            let a = client.send(&format!(
                r#"{{"op":"AnswerBatch","session":{session},"labels":[{}]}}"#,
                labels.join(",")
            ));
            assert_eq!(
                a.get("applied").unwrap().as_u64(),
                Some(labels.len() as u64),
                "the whole batch is applied in one pass: {a}"
            );
            if a.get("resolved").unwrap().as_bool() == Some(true) {
                break a.get("sql").unwrap().as_str().unwrap().to_string();
            }
        };
        assert!(sql.contains("r1.To = r2.City"), "{sql}");
        assert!(sql.contains("r1.Airline = r2.Discount"), "{sql}");
        client.send(&format!(r#"{{"op":"CloseSession","session":{session}}}"#));
    }
}

#[test]
fn oversized_answer_batch_is_rejected_by_server_limits() {
    for transport in transports() {
        let server = start_server_with_limits(
            transport,
            ServerLimits {
                max_batch: 2,
                ..Default::default()
            },
        );
        let mut client = Client::connect(server.addr);
        let r = client.send(r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#);
        let session = r.get("session").unwrap().as_u64().unwrap();

        let r = client.send_raw(&format!(
            r#"{{"op":"AnswerBatch","session":{session},"labels":[{{"tuple":2,"label":"+"}},{{"tuple":6,"label":"-"}},{{"tuple":7,"label":"-"}}]}}"#
        ));
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert!(
            r.get("error").unwrap().as_str().unwrap().contains("cap"),
            "{r}"
        );
        // Nothing was applied, and a within-cap batch still works.
        let s = client.send(&format!(r#"{{"op":"Stats","session":{session}}}"#));
        assert_eq!(s.get("interactions").unwrap().as_u64(), Some(0));
        let r = client.send(&format!(
            r#"{{"op":"AnswerBatch","session":{session},"labels":[{{"tuple":2,"label":"+"}},{{"tuple":6,"label":"-"}}]}}"#
        ));
        assert_eq!(r.get("applied").unwrap().as_u64(), Some(2));
    }
}

#[test]
fn conflicting_batch_is_rejected_atomically_over_tcp() {
    for transport in transports() {
        let server = start_server(transport);
        let mut client = Client::connect(server.addr);
        let r = client.send(r#"{"op":"CreateSession","source":{"scenario":"flights"}}"#);
        let session = r.get("session").unwrap().as_u64().unwrap();
        let q = client.send(&format!(r#"{{"op":"NextQuestion","session":{session}}}"#));
        let proposed = q.get("tuple").unwrap().as_u64().unwrap();

        // Tuple 2 labeled + and − in one batch: typed rejection, no state
        // change — stats stay at zero, the question cache still proposes the
        // same pending tuple, and the same labels minus the conflict apply.
        let r = client.send_raw(&format!(
            r#"{{"op":"AnswerBatch","session":{session},"labels":[{{"tuple":2,"label":"+"}},{{"tuple":6,"label":"-"}},{{"tuple":2,"label":"-"}}]}}"#
        ));
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert!(
            r.get("error").unwrap().as_str().unwrap().contains("both"),
            "{r}"
        );
        let s = client.send(&format!(r#"{{"op":"Stats","session":{session}}}"#));
        assert_eq!(s.get("interactions").unwrap().as_u64(), Some(0), "{s}");
        assert_eq!(s.get("pruned").unwrap().as_u64(), Some(0), "{s}");
        let q = client.send(&format!(r#"{{"op":"NextQuestion","session":{session}}}"#));
        assert_eq!(q.get("tuple").unwrap().as_u64(), Some(proposed));
        let r = client.send(&format!(
            r#"{{"op":"AnswerBatch","session":{session},"labels":[{{"tuple":2,"label":"+"}},{{"tuple":6,"label":"-"}}]}}"#
        ));
        assert_eq!(r.get("applied").unwrap().as_u64(), Some(2));
    }
}

#[test]
fn nested_json_bomb_is_a_parse_error_not_a_stack_overflow() {
    // (The streamed over-the-cap line lives in the `transport` suite —
    // `oversized_line_is_answered_then_dropped_without_unbounded_buffering`.)
    for transport in transports() {
        let server = start_server(transport);
        let mut client = Client::connect(server.addr);
        let bomb = "[".repeat(200_000);
        let json = client.send_raw(&bomb);
        assert_eq!(json.get("ok").unwrap().as_bool(), Some(false));
        assert!(json
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("nesting"));
        // The server survived: a fresh session still opens.
        let r = client.send(r#"{"op":"ListSessions"}"#);
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true));
    }
}

#[test]
fn malformed_lines_do_not_kill_the_connection() {
    for transport in transports() {
        let server = start_server(transport);
        let mut client = Client::connect(server.addr);

        // A garbage line yields an error response, not a hangup.
        let json = client.send_raw("this is not json");
        assert_eq!(json.get("ok").unwrap().as_bool(), Some(false));

        // The same connection still serves real requests afterwards.
        let r = client.send(r#"{"op":"ListSessions"}"#);
        assert_eq!(r.get("sessions").unwrap().as_array().unwrap().len(), 0);
    }
}
