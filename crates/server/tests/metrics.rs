//! End-to-end observability contract: a scripted session over the real
//! wire must make the `Metrics` op report **exactly** the request mix the
//! client sent — per-op request counters, error counters, decode refusals,
//! and latency sample counts — identically on both transports. This is
//! the acceptance test of the metrics subsystem: if instrumentation
//! drifts from dispatch (double counts, missed paths, wrong op
//! attribution), these equalities break.

#![forbid(unsafe_code)]

mod support;

use jim_json::Json;
use jim_server::handler::Handler;
use jim_server::store::{SessionStore, StoreConfig};
use std::sync::Arc;
use std::time::Duration;
use support::{transports, Client, TestServer};

fn start_server(transport: jim_server::serve::Transport) -> TestServer {
    let store = Arc::new(SessionStore::new(StoreConfig {
        max_sessions: 8,
        ttl: Duration::from_secs(600),
        ..Default::default()
    }));
    // A long sweep interval: sweeps must not race the gauge assertions.
    TestServer::start_with_sweep(
        transport,
        Arc::new(Handler::new(store)),
        Duration::from_secs(600),
    )
}

fn op_requests(metrics: &Json, op: &str) -> u64 {
    metrics
        .get("ops")
        .and_then(|ops| ops.get(op))
        .and_then(|m| m.get("requests"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("ops.{op}.requests missing in {metrics}"))
}

fn op_field(metrics: &Json, op: &str, field: &str) -> u64 {
    metrics
        .get("ops")
        .and_then(|ops| ops.get(op))
        .and_then(|m| m.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("ops.{op}.{field} missing in {metrics}"))
}

fn latency_count(metrics: &Json, op: &str) -> u64 {
    metrics
        .get("ops")
        .and_then(|ops| ops.get(op))
        .and_then(|m| m.get("latency_us"))
        .and_then(|l| l.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("ops.{op}.latency_us.count missing"))
}

fn transport_field(metrics: &Json, field: &str) -> i64 {
    metrics
        .get("transport")
        .and_then(|t| t.get(field))
        .and_then(|v| v.as_u64().map(|u| u as i64))
        .unwrap_or_else(|| panic!("transport.{field} missing in {metrics}"))
}

/// The scripted mix: fixed numbers of every exercised op, two decode
/// refusals (a malformed JSON line and an unknown op), one oversize-free
/// run. Metrics must agree with the script to the exact request.
#[test]
fn scripted_session_reports_exact_op_counts_on_both_transports() {
    for transport in transports() {
        let server = start_server(transport);
        let mut client = Client::connect(server.addr);

        let r = client.send(
            r#"{"op":"CreateSession","source":{"scenario":"social"},"strategy":"LookaheadMinPrune"}"#,
        );
        let session = r.get("session").unwrap().as_u64().unwrap();

        // 2× NextQuestion, 2× Answer on the just-asked tuple (a negative
        // label never resolves this instance in two steps, and labeling
        // the pending question's tuple can never be uninformative).
        for _ in 0..2 {
            let q = client.send(&format!(r#"{{"op":"NextQuestion","session":{session}}}"#));
            assert_eq!(q.get("resolved").and_then(Json::as_bool), Some(false));
            let tuple = q.get("tuple").unwrap().as_u64().unwrap();
            client.send(&format!(
                r#"{{"op":"Answer","session":{session},"tuple":{tuple},"label":"-"}}"#
            ));
        }

        client.send(&format!(r#"{{"op":"Stats","session":{session}}}"#));
        client.send(&format!(r#"{{"op":"Sql","session":{session}}}"#));
        client.send(&format!(r#"{{"op":"TopK","session":{session},"k":3}}"#));
        client.send(&format!(r#"{{"op":"Transcript","session":{session}}}"#));
        client.send(r#"{"op":"ListSessions"}"#);

        // One op-level error: NextQuestion against a session that does
        // not exist. Parses fine, so it lands on the op's error counter,
        // not on decode_refused.
        let err = client.send_raw(r#"{"op":"NextQuestion","session":999999}"#);
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));

        // Two decode refusals: broken JSON and an unknown op. Neither
        // parses to a Request, so no op counter moves.
        let bad = client.send_raw("this is not json");
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
        let unknown = client.send_raw(r#"{"op":"Bogus"}"#);
        assert_eq!(unknown.get("ok").and_then(Json::as_bool), Some(false));

        client.send(&format!(r#"{{"op":"CloseSession","session":{session}}}"#));

        let metrics = client.send(r#"{"op":"Metrics"}"#);

        // Exact per-op request counts — the script, nothing more or less.
        let expected: &[(&str, u64)] = &[
            ("CreateSession", 1),
            ("NextQuestion", 3), // 2 scripted + 1 unknown-session error
            ("Answer", 2),
            ("Stats", 1),
            ("Sql", 1),
            ("TopK", 1),
            ("Transcript", 1),
            ("ListSessions", 1),
            ("CloseSession", 1),
            ("Metrics", 1), // counts itself: incremented before dispatch
            ("AnswerBatch", 0),
            ("Explain", 0),
            ("ResumeSession", 0),
        ];
        for &(op, count) in expected {
            assert_eq!(
                op_requests(&metrics, op),
                count,
                "[{transport}] ops.{op}.requests"
            );
        }

        // Error attribution: exactly the unknown-session NextQuestion.
        for &(op, _) in expected {
            let want = if op == "NextQuestion" { 1 } else { 0 };
            assert_eq!(op_field(&metrics, op, "errors"), want, "ops.{op}.errors");
        }

        // Latency lag: every op's sample count equals its request count,
        // except the in-flight Metrics request itself (recorded only
        // after its own snapshot was taken).
        for &(op, count) in expected {
            let want = if op == "Metrics" { count - 1 } else { count };
            assert_eq!(
                latency_count(&metrics, op),
                want,
                "[{transport}] ops.{op}.latency_us.count"
            );
        }

        // Transport counters: every line the script wrote was dispatched;
        // the two unparseable ones were refused; nothing was oversized;
        // this one connection is live.
        let total_lines: i64 = 13 + 2; // 13 parsed op requests + 2 refusals
        assert_eq!(transport_field(&metrics, "dispatched"), total_lines);
        assert_eq!(transport_field(&metrics, "decode_refused"), 2);
        assert_eq!(transport_field(&metrics, "oversized"), 0);
        assert!(
            transport_field(&metrics, "live_connections") >= 1,
            "[{transport}] this connection is live"
        );

        // A second Metrics call: the previous one's latency sample has
        // landed, so the lag is always exactly one in-flight request.
        let again = client.send(r#"{"op":"Metrics"}"#);
        assert_eq!(op_requests(&again, "Metrics"), 2);
        assert_eq!(latency_count(&again, "Metrics"), 1);

        drop(client);
        server.shutdown().expect("clean shutdown");
    }
}

/// Store-level counters surface through the wire snapshot: resident
/// sessions track creates/closes, and `ListSessions` reports the same
/// store block the `Metrics` op does.
#[test]
fn store_gauges_track_session_population() {
    for transport in transports() {
        let server = start_server(transport);
        let mut client = Client::connect(server.addr);

        let mut ids = Vec::new();
        for _ in 0..3 {
            let r = client.send(
                r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
            );
            ids.push(r.get("session").unwrap().as_u64().unwrap());
        }

        let metrics = client.send(r#"{"op":"Metrics"}"#);
        let store = metrics.get("store").expect("store section");
        assert_eq!(store.get("resident_sessions").unwrap().as_u64(), Some(3));
        assert_eq!(store.get("disk_sessions").unwrap().as_u64(), Some(0));

        let listed = client.send(r#"{"op":"ListSessions"}"#);
        assert_eq!(listed.get("resident_count").unwrap().as_u64(), Some(3));
        assert_eq!(listed.get("disk_count").unwrap().as_u64(), Some(0));

        for id in &ids {
            client.send(&format!(r#"{{"op":"CloseSession","session":{id}}}"#));
        }
        let after = client.send(r#"{"op":"Metrics"}"#);
        let store = after.get("store").expect("store section");
        assert_eq!(store.get("resident_sessions").unwrap().as_u64(), Some(0));

        drop(client);
        server.shutdown().expect("clean shutdown");
    }
}
