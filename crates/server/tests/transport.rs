//! Hostile-peer and scale behavior of the TCP front ends, end to end on
//! **both** transports: strict UTF-8 framing (no lossy decode can ever
//! store corrupted relation data), slowloris partial lines, the 16 MiB
//! answered-then-dropped cap, graceful shutdown that drains in-flight
//! responses, and the one thing only the epoll event loop can do —
//! holding hundreds of idle connections without a thread per socket.

mod support;

use jim_server::handler::Handler;
use jim_server::serve::Transport;
use jim_server::store::{SessionStore, StoreConfig};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;
use support::{transports, Client, TestServer};

fn start(transport: Transport) -> TestServer {
    let store = Arc::new(SessionStore::new(StoreConfig {
        max_sessions: 512,
        ttl: Duration::from_secs(600),
        ..Default::default()
    }));
    TestServer::start(transport, Arc::new(Handler::new(store)))
}

#[test]
fn invalid_utf8_request_is_refused_without_session_corruption() {
    for transport in transports() {
        let server = start(transport);
        let mut client = Client::connect(server.addr);

        // A CreateSession whose inline CSV carries invalid UTF-8. A lossy
        // decode would turn the bytes into U+FFFD and happily store them
        // as relation data; the server must refuse the line instead.
        let mut raw: Vec<u8> = Vec::new();
        raw.extend_from_slice(
            br#"{"op":"CreateSession","source":{"relations":[{"name":"r","csv":"City"#,
        );
        raw.extend_from_slice(b"\\n"); // JSON-escaped newline inside the csv
        raw.extend_from_slice(&[0xC3, 0x28, 0xFF]); // not UTF-8
        raw.extend_from_slice(b"\\n\"}]}}\n");
        client.writer.write_all(&raw).expect("write request");
        client.writer.flush().expect("flush request");

        let r = client.read_response();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false), "{r}");
        assert!(
            r.get("error").unwrap().as_str().unwrap().contains("UTF-8"),
            "typed decode error: {r}"
        );

        // No session was created from the mangled line, the connection
        // survived, and a clean request still works on it.
        let list = client.send(r#"{"op":"ListSessions"}"#);
        assert_eq!(
            list.get("sessions").unwrap().as_array().unwrap().len(),
            0,
            "nothing stored from a refused line: {list}"
        );
        let ok = client.send(
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
        );
        assert_eq!(ok.get("tuples").unwrap().as_u64(), Some(12));
    }
}

#[test]
fn slowloris_partial_line_blocks_nobody() {
    for transport in transports() {
        let server = start(transport);

        // The slowloris peer: half a request, no newline, then silence.
        let mut slow = Client::connect(server.addr);
        slow.writer
            .write_all(br#"{"op":"ListSes"#)
            .expect("write partial");
        slow.writer.flush().expect("flush partial");

        // Other connections are served while it stalls.
        let mut busy = Client::connect(server.addr);
        let r = busy.send(
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
        );
        let session = r.get("session").unwrap().as_u64().unwrap();
        let q = busy.send(&format!(r#"{{"op":"NextQuestion","session":{session}}}"#));
        assert_eq!(q.get("resolved").unwrap().as_bool(), Some(false));

        // The stalled line is still assembled once the peer finishes it.
        slow.writer
            .write_all(b"sions\"}\n")
            .expect("write completion");
        slow.writer.flush().expect("flush completion");
        let list = slow.read_response();
        assert_eq!(list.get("ok").unwrap().as_bool(), Some(true), "{list}");
        assert_eq!(list.get("sessions").unwrap().as_array().unwrap().len(), 1);
    }
}

#[test]
fn oversized_line_is_answered_then_dropped_without_unbounded_buffering() {
    use jim_server::serve::MAX_LINE_BYTES;
    for transport in transports() {
        let server = start(transport);
        let mut client = Client::connect(server.addr);

        // Stream past the cap with no newline; the server must stop
        // accumulating, answer the typed error and hang up.
        let chunk = vec![b'y'; 1 << 20];
        let mut sent: u64 = 0;
        while sent <= MAX_LINE_BYTES {
            client.writer.write_all(&chunk).expect("server reading");
            sent += chunk.len() as u64;
        }
        client.writer.flush().ok();
        let r = client.read_response();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert!(r.get("error").unwrap().as_str().unwrap().contains("16 MiB"));
        let mut rest = String::new();
        match client.reader.read_line(&mut rest) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("connection survived the cap ({n} more bytes)"),
        }

        // The server itself is fine: fresh connections work.
        let mut next = Client::connect(server.addr);
        next.send(r#"{"op":"ListSessions"}"#);
    }
}

#[test]
fn half_closed_peer_still_gets_its_response_then_the_conn_closes() {
    // A peer that sends its request and immediately shuts down its write
    // side (`printf ... | nc` style) must still receive the response —
    // and must not be able to spin the reactor (peer half-close is a
    // level-triggered condition that cannot be read away; the epoll
    // layer only subscribes to it alongside read interest).
    for transport in transports() {
        let server = start(transport);
        let mut client = Client::connect(server.addr);
        client
            .writer
            .write_all(b"{\"op\":\"ListSessions\"}\n")
            .expect("write request");
        client.writer.flush().expect("flush");
        client
            .writer
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let r = client.read_response();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r}");
        let mut rest = String::new();
        match client.reader.read_line(&mut rest) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("connection outlived the half-close ({n} bytes)"),
        }
    }
}

#[test]
fn graceful_shutdown_drains_and_joins_both_transports() {
    for transport in transports() {
        let server = start(transport);
        let addr = server.addr;
        let mut client = Client::connect(addr);
        client.send(
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
        );

        // Trigger the signal: serve() and the sweeper must both return
        // (shutdown() joins them — this hangs forever if either leaks).
        server.shutdown().expect("serve returned cleanly");

        // The established connection is closed out...
        let mut rest = String::new();
        match client.reader.read_line(&mut rest) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("connection outlived shutdown ({n} bytes)"),
        }
        // ...and the listener is gone: new connects are refused (or, in
        // a race with kernel accept queues, closed without service).
        match std::net::TcpStream::connect(addr) {
            Err(_) => {}
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                let mut one = [0u8; 1];
                match std::io::Read::read(&mut { stream }, &mut one) {
                    Ok(0) | Err(_) => {}
                    Ok(_) => panic!("a dead server answered"),
                }
            }
        }
    }
}

/// Threads currently alive in this process, from /proc (linux only —
/// exactly where the epoll transport exists).
#[cfg(target_os = "linux")]
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// The scale claim only the event loop can make: hundreds of idle
/// connections served by a **bounded** thread count (one reactor plus a
/// small worker pool) — thread-per-connection would add one stack per
/// socket and blow straight past the bound.
#[test]
#[cfg(target_os = "linux")]
fn many_idle_connections_need_no_thread_per_connection() {
    const IDLE_CONNS: usize = 256;
    // Reactor + workers ≤ ~10 threads; the slack absorbs unrelated tests
    // running concurrently in this binary. Thread-per-connection would
    // add ≥ IDLE_CONNS and fail regardless.
    const THREAD_BOUND: usize = 128;

    let server = start(Transport::Epoll);
    let before = process_threads();

    let mut conns: Vec<Client> = (0..IDLE_CONNS)
        .map(|_| Client::connect(server.addr))
        .collect();
    // Prove the sockets are live, not just accepted: every 32nd one does
    // a round trip while the rest sit idle.
    for i in (0..IDLE_CONNS).step_by(32) {
        conns[i].send(r#"{"op":"ListSessions"}"#);
    }

    let after = process_threads();
    assert!(
        after.saturating_sub(before) < THREAD_BOUND,
        "epoll transport grew {before} -> {after} threads for {IDLE_CONNS} idle connections"
    );

    // Still responsive with everything connected, front to back.
    conns[0].send(r#"{"op":"ListSessions"}"#);
    conns[IDLE_CONNS - 1].send(r#"{"op":"ListSessions"}"#);
}
