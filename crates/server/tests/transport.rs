//! Hostile-peer and scale behavior of the TCP front ends, end to end on
//! **both** transports: strict UTF-8 framing (no lossy decode can ever
//! store corrupted relation data), slowloris partial lines (tolerated
//! below the idle timeout, reaped past it), the 16 MiB
//! answered-then-dropped cap, the max-connections admission cap (typed
//! `overloaded` shed, never a hang), pipelined request ordering,
//! graceful shutdown that drains in-flight responses, and the things
//! only the epoll event loop can do — holding hundreds of idle
//! connections without a thread per socket, and spreading them across
//! multiple reactors.

#![forbid(unsafe_code)]

mod support;

use jim_json::Json;
use jim_server::handler::Handler;
use jim_server::serve::{Transport, TransportLimits};
use jim_server::store::{SessionStore, StoreConfig};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};
use support::{transports, Client, TestServer};

fn start(transport: Transport) -> TestServer {
    let store = Arc::new(SessionStore::new(StoreConfig {
        max_sessions: 512,
        ttl: Duration::from_secs(600),
        ..Default::default()
    }));
    TestServer::start(transport, Arc::new(Handler::new(store)))
}

fn start_with_limits(transport: Transport, limits: TransportLimits) -> TestServer {
    let store = Arc::new(SessionStore::new(StoreConfig {
        max_sessions: 512,
        ttl: Duration::from_secs(600),
        ..Default::default()
    }));
    TestServer::start_with_limits(
        transport,
        Arc::new(Handler::new(store)),
        Duration::from_secs(600),
        limits,
    )
}

/// The typed `code` field of an `ok:false` response.
fn code(response: &Json) -> Option<&str> {
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    response.get("code").and_then(Json::as_str)
}

#[test]
fn invalid_utf8_request_is_refused_without_session_corruption() {
    for transport in transports() {
        let server = start(transport);
        let mut client = Client::connect(server.addr);

        // A CreateSession whose inline CSV carries invalid UTF-8. A lossy
        // decode would turn the bytes into U+FFFD and happily store them
        // as relation data; the server must refuse the line instead.
        let mut raw: Vec<u8> = Vec::new();
        raw.extend_from_slice(
            br#"{"op":"CreateSession","source":{"relations":[{"name":"r","csv":"City"#,
        );
        raw.extend_from_slice(b"\\n"); // JSON-escaped newline inside the csv
        raw.extend_from_slice(&[0xC3, 0x28, 0xFF]); // not UTF-8
        raw.extend_from_slice(b"\\n\"}]}}\n");
        client.writer.write_all(&raw).expect("write request");
        client.writer.flush().expect("flush request");

        let r = client.read_response();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false), "{r}");
        assert!(
            r.get("error").unwrap().as_str().unwrap().contains("UTF-8"),
            "typed decode error: {r}"
        );

        // No session was created from the mangled line, the connection
        // survived, and a clean request still works on it.
        let list = client.send(r#"{"op":"ListSessions"}"#);
        assert_eq!(
            list.get("sessions").unwrap().as_array().unwrap().len(),
            0,
            "nothing stored from a refused line: {list}"
        );
        let ok = client.send(
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
        );
        assert_eq!(ok.get("tuples").unwrap().as_u64(), Some(12));
    }
}

#[test]
fn slowloris_partial_line_blocks_nobody() {
    for transport in transports() {
        let server = start(transport);

        // The slowloris peer: half a request, no newline, then silence.
        let mut slow = Client::connect(server.addr);
        slow.writer
            .write_all(br#"{"op":"ListSes"#)
            .expect("write partial");
        slow.writer.flush().expect("flush partial");

        // Other connections are served while it stalls.
        let mut busy = Client::connect(server.addr);
        let r = busy.send(
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
        );
        let session = r.get("session").unwrap().as_u64().unwrap();
        let q = busy.send(&format!(r#"{{"op":"NextQuestion","session":{session}}}"#));
        assert_eq!(q.get("resolved").unwrap().as_bool(), Some(false));

        // The stalled line is still assembled once the peer finishes it.
        slow.writer
            .write_all(b"sions\"}\n")
            .expect("write completion");
        slow.writer.flush().expect("flush completion");
        let list = slow.read_response();
        assert_eq!(list.get("ok").unwrap().as_bool(), Some(true), "{list}");
        assert_eq!(list.get("sessions").unwrap().as_array().unwrap().len(), 1);
    }
}

#[test]
fn oversized_line_is_answered_then_dropped_without_unbounded_buffering() {
    use jim_server::serve::MAX_LINE_BYTES;
    for transport in transports() {
        let server = start(transport);
        let mut client = Client::connect(server.addr);

        // Stream past the cap with no newline; the server must stop
        // accumulating, answer the typed error and hang up.
        let chunk = vec![b'y'; 1 << 20];
        let mut sent: u64 = 0;
        while sent <= MAX_LINE_BYTES {
            client.writer.write_all(&chunk).expect("server reading");
            sent += chunk.len() as u64;
        }
        client.writer.flush().ok();
        let r = client.read_response();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(false));
        assert!(r.get("error").unwrap().as_str().unwrap().contains("16 MiB"));
        let mut rest = String::new();
        match client.reader.read_line(&mut rest) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("connection survived the cap ({n} more bytes)"),
        }

        // The server itself is fine: fresh connections work.
        let mut next = Client::connect(server.addr);
        next.send(r#"{"op":"ListSessions"}"#);
    }
}

#[test]
fn half_closed_peer_still_gets_its_response_then_the_conn_closes() {
    // A peer that sends its request and immediately shuts down its write
    // side (`printf ... | nc` style) must still receive the response —
    // and must not be able to spin the reactor (peer half-close is a
    // level-triggered condition that cannot be read away; the epoll
    // layer only subscribes to it alongside read interest).
    for transport in transports() {
        let server = start(transport);
        let mut client = Client::connect(server.addr);
        client
            .writer
            .write_all(b"{\"op\":\"ListSessions\"}\n")
            .expect("write request");
        client.writer.flush().expect("flush");
        client
            .writer
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let r = client.read_response();
        assert_eq!(r.get("ok").unwrap().as_bool(), Some(true), "{r}");
        let mut rest = String::new();
        match client.reader.read_line(&mut rest) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("connection outlived the half-close ({n} bytes)"),
        }
    }
}

#[test]
fn graceful_shutdown_drains_and_joins_both_transports() {
    for transport in transports() {
        let server = start(transport);
        let addr = server.addr;
        let mut client = Client::connect(addr);
        client.send(
            r#"{"op":"CreateSession","source":{"scenario":"flights"},"strategy":"LookaheadMinPrune"}"#,
        );

        // Trigger the signal: serve() and the sweeper must both return
        // (shutdown() joins them — this hangs forever if either leaks).
        server.shutdown().expect("serve returned cleanly");

        // The established connection is closed out...
        let mut rest = String::new();
        match client.reader.read_line(&mut rest) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("connection outlived shutdown ({n} bytes)"),
        }
        // ...and the listener is gone: new connects are refused (or, in
        // a race with kernel accept queues, closed without service).
        match std::net::TcpStream::connect(addr) {
            Err(_) => {}
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .unwrap();
                let mut one = [0u8; 1];
                match std::io::Read::read(&mut { stream }, &mut one) {
                    Ok(0) | Err(_) => {}
                    Ok(_) => panic!("a dead server answered"),
                }
            }
        }
    }
}

/// Threads currently alive in this process, from /proc (linux only —
/// exactly where the epoll transport exists).
#[cfg(target_os = "linux")]
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// The scale claim only the event loop can make: hundreds of idle
/// connections served by a **bounded** thread count (one reactor plus a
/// small worker pool) — thread-per-connection would add one stack per
/// socket and blow straight past the bound.
#[test]
#[cfg(target_os = "linux")]
fn many_idle_connections_need_no_thread_per_connection() {
    const IDLE_CONNS: usize = 256;
    // Reactor + workers ≤ ~10 threads; the slack absorbs unrelated tests
    // running concurrently in this binary. Thread-per-connection would
    // add ≥ IDLE_CONNS and fail regardless.
    const THREAD_BOUND: usize = 128;

    let server = start(Transport::Epoll);
    let before = process_threads();

    let mut conns: Vec<Client> = (0..IDLE_CONNS)
        .map(|_| Client::connect(server.addr))
        .collect();
    // Prove the sockets are live, not just accepted: every 32nd one does
    // a round trip while the rest sit idle.
    for i in (0..IDLE_CONNS).step_by(32) {
        conns[i].send(r#"{"op":"ListSessions"}"#);
    }

    let after = process_threads();
    assert!(
        after.saturating_sub(before) < THREAD_BOUND,
        "epoll transport grew {before} -> {after} threads for {IDLE_CONNS} idle connections"
    );

    // Still responsive with everything connected, front to back.
    conns[0].send(r#"{"op":"ListSessions"}"#);
    conns[IDLE_CONNS - 1].send(r#"{"op":"ListSessions"}"#);
}

/// Connect and classify the server's admission verdict: a shed
/// connection is written to immediately (the typed `overloaded` line,
/// then close), an admitted one hears nothing until it speaks. `Err` is
/// the shed response (`None` when a TCP reset raced the notice away).
fn connect_probe(addr: std::net::SocketAddr) -> Result<Client, Option<Json>> {
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .expect("set timeout");
    stream.set_nodelay(true).expect("set nodelay");
    let mut one = [0u8; 1];
    match stream.peek(&mut one) {
        Ok(0) => Err(None), // closed before the notice arrived
        Ok(_) => {
            let mut reader = std::io::BufReader::new(stream);
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(n) if n > 0 => Err(Some(Json::parse(line.trim()).expect("shed line is JSON"))),
                _ => Err(None),
            }
        }
        Err(_) => {
            // Nothing said within the probe window: admitted.
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("set timeout");
            Ok(Client {
                reader: std::io::BufReader::new(stream.try_clone().expect("clone stream")),
                writer: stream,
            })
        }
    }
}

#[test]
fn idle_peer_is_answered_then_reaped_after_the_timeout() {
    for transport in transports() {
        let server = start_with_limits(
            transport,
            TransportLimits {
                idle_timeout: Some(Duration::from_millis(300)),
                ..Default::default()
            },
        );
        let mut client = Client::connect(server.addr);
        client.send(r#"{"op":"ListSessions"}"#); // live — then silent
        let waiting = Instant::now();
        let r = client.read_response(); // blocks until the reaper speaks
        assert_eq!(code(&r), Some("idle_timeout"), "{r}");
        let waited = waiting.elapsed();
        assert!(
            waited >= Duration::from_millis(200),
            "reaped too early ({waited:?}) — the timeout clock must reset on complete lines"
        );
        assert!(
            waited < Duration::from_secs(10),
            "reaped too late ({waited:?})"
        );
        let mut rest = String::new();
        match client.reader.read_line(&mut rest) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("connection outlived its idle reap ({n} more bytes)"),
        }
        // The server itself is fine, and a *busy* connection with the
        // same limits is never reaped.
        let mut busy = Client::connect(server.addr);
        for _ in 0..5 {
            busy.send(r#"{"op":"ListSessions"}"#);
            std::thread::sleep(Duration::from_millis(120));
        }
        busy.send(r#"{"op":"ListSessions"}"#);
    }
}

#[test]
fn slowloris_dripping_mid_line_is_disconnected() {
    for transport in transports() {
        let server = start_with_limits(
            transport,
            TransportLimits {
                idle_timeout: Some(Duration::from_millis(300)),
                ..Default::default()
            },
        );
        let mut client = Client::connect(server.addr);
        client
            .writer
            .write_all(br#"{"op":"Li"#)
            .expect("write partial");
        client.writer.flush().expect("flush partial");
        // Drip one byte every 30ms, never finishing the line — stretches
        // far past the idle timeout. Raw bytes must not count as
        // progress; writes start failing once the server hangs up.
        for _ in 0..30 {
            std::thread::sleep(Duration::from_millis(30));
            if client
                .writer
                .write_all(b"x")
                .and_then(|_| client.writer.flush())
                .is_err()
            {
                break;
            }
        }
        // By now (~900ms of dripping vs a 300ms timeout) the connection
        // must be dead: either the typed reap notice or a reset/EOF (a
        // reset can race the notice away once our drips hit the closed
        // socket). What it must NOT be is alive.
        let reading = Instant::now();
        let mut line = String::new();
        match client.reader.read_line(&mut line) {
            Ok(0) | Err(_) => {}
            Ok(_) => {
                let r = Json::parse(line.trim()).expect("valid JSON response");
                assert_eq!(code(&r), Some("idle_timeout"), "{r}");
            }
        }
        assert!(
            reading.elapsed() < Duration::from_secs(10),
            "slowloris connection was never reaped"
        );
        // Fresh connections are unaffected.
        let mut next = Client::connect(server.addr);
        next.send(r#"{"op":"ListSessions"}"#);
    }
}

#[test]
fn over_cap_connect_is_shed_with_typed_overloaded_and_slots_free_on_close() {
    for transport in transports() {
        let server = start_with_limits(
            transport,
            TransportLimits {
                max_connections: 4,
                ..Default::default()
            },
        );
        // Fill the cap and prove every admitted connection serves.
        let mut admitted: Vec<Client> = (0..4).map(|_| Client::connect(server.addr)).collect();
        for c in admitted.iter_mut() {
            c.send(r#"{"op":"ListSessions"}"#);
        }
        // Connection 5 of a 4-cap server: a typed answer and a close —
        // not a hang, not a queue slot.
        match connect_probe(server.addr) {
            Ok(_) => panic!("connection over the cap was admitted"),
            Err(Some(r)) => {
                assert_eq!(code(&r), Some("overloaded"), "{r}");
                assert!(
                    r.get("error")
                        .unwrap()
                        .as_str()
                        .unwrap()
                        .contains("max-connections"),
                    "{r}"
                );
            }
            Err(None) => panic!("shed without the typed notice"),
        }
        // Shedding disturbed nobody: the admitted connections still serve.
        for c in admitted.iter_mut() {
            c.send(r#"{"op":"ListSessions"}"#);
        }
        // Closing one frees its slot (admission is a live count, not a
        // lifetime quota) — within the server's close-detection latency.
        drop(admitted.remove(0));
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut readmitted = loop {
            match connect_probe(server.addr) {
                Ok(client) => break client,
                Err(_) => {
                    assert!(Instant::now() < deadline, "freed slot never re-admitted");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        };
        readmitted.send(r#"{"op":"ListSessions"}"#);
    }
}

#[test]
fn per_ip_quota_sheds_the_greedy_peer_and_frees_on_close() {
    for transport in transports() {
        // Every test client comes from 127.0.0.1, so a per-ip cap of 2
        // bites on the third connection while the global cap (default
        // 1024) never does — proving the shed is the quota's.
        let server = start_with_limits(
            transport,
            TransportLimits {
                max_per_ip: Some(2),
                ..Default::default()
            },
        );
        let mut admitted: Vec<Client> = (0..2).map(|_| Client::connect(server.addr)).collect();
        for c in admitted.iter_mut() {
            c.send(r#"{"op":"ListSessions"}"#);
        }
        // Connection 3 from the same address: the same typed answer as
        // the global cap — a notice and a close, never a queue slot.
        match connect_probe(server.addr) {
            Ok(_) => panic!("third connection from one address was admitted past the quota"),
            Err(Some(r)) => assert_eq!(code(&r), Some("overloaded"), "{r}"),
            Err(None) => panic!("shed without the typed notice"),
        }
        // The quota disturbed nobody already admitted.
        for c in admitted.iter_mut() {
            c.send(r#"{"op":"ListSessions"}"#);
        }
        // Closing one returns the slot to that address (a live count per
        // ip, not a lifetime quota) — within close-detection latency.
        drop(admitted.remove(0));
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut readmitted = loop {
            match connect_probe(server.addr) {
                Ok(client) => break client,
                Err(_) => {
                    assert!(
                        Instant::now() < deadline,
                        "freed per-ip slot never re-admitted"
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        };
        readmitted.send(r#"{"op":"ListSessions"}"#);
    }
}

/// The ISSUE-sized version: connection 257 of a 256-cap server (epoll
/// only — the threads transport would need 256 OS threads to stage it).
#[test]
#[cfg(target_os = "linux")]
fn connection_257_of_a_256_cap_server_gets_overloaded() {
    if !jim_aio::SUPPORTED {
        return;
    }
    let server = start_with_limits(
        Transport::Epoll,
        TransportLimits {
            max_connections: 256,
            ..Default::default()
        },
    );
    let mut conns: Vec<Client> = (0..256).map(|_| Client::connect(server.addr)).collect();
    // Prove the fleet is live, not just accepted (every 32nd round-trips).
    for i in (0..256).step_by(32) {
        conns[i].send(r#"{"op":"ListSessions"}"#);
    }
    match connect_probe(server.addr) {
        Ok(_) => panic!("connection 257 was admitted past the 256 cap"),
        Err(Some(r)) => assert_eq!(code(&r), Some("overloaded"), "{r}"),
        Err(None) => panic!("shed without the typed notice"),
    }
    // Existing connections keep serving after the shed.
    conns[0].send(r#"{"op":"ListSessions"}"#);
    conns[255].send(r#"{"op":"ListSessions"}"#);
}

#[test]
fn pipelined_requests_are_answered_in_request_order() {
    // A peer that writes a burst of requests without reading gets every
    // response, in request order — even though the epoll transport runs
    // up to `max_inflight` of them concurrently on the worker pool (the
    // reactor reorders completions by sequence number before flushing).
    const BURST: usize = 24;
    for transport in transports() {
        let server = start(transport);
        let mut client = Client::connect(server.addr);
        let mut batch = String::new();
        for i in 0..BURST {
            if i % 2 == 0 {
                batch.push_str("{\"op\":\"ListSessions\"}\n"); // ok:true
            } else {
                batch.push_str("{\"op\":\"NextQuestion\",\"session\":999}\n"); // ok:false
            }
        }
        client
            .writer
            .write_all(batch.as_bytes())
            .expect("write burst");
        client.writer.flush().expect("flush burst");
        for i in 0..BURST {
            let r = client.read_response();
            let expect_ok = i % 2 == 0;
            assert_eq!(
                r.get("ok").and_then(Json::as_bool),
                Some(expect_ok),
                "response {i} out of order: {r}"
            );
            if expect_ok {
                assert!(r.get("sessions").is_some(), "response {i}: {r}");
            }
        }
        // Nothing extra trails the burst, and the connection still works.
        client.send(r#"{"op":"ListSessions"}"#);
    }
}

/// Multi-reactor distribution and gauge aggregation, end to end: eight
/// connections over four reactors land two on each (round-robin from
/// one accept point is deterministic), the per-reactor gauges say so,
/// and the global gauges are the exact sum — the `Metrics` snapshot is
/// where both live.
#[test]
#[cfg(target_os = "linux")]
fn four_reactors_share_connections_and_gauges_aggregate() {
    if !jim_aio::SUPPORTED {
        return;
    }
    let server = start_with_limits(
        Transport::Epoll,
        TransportLimits {
            reactors: 4,
            ..Default::default()
        },
    );
    let mut conns: Vec<Client> = (0..8).map(|_| Client::connect(server.addr)).collect();
    for c in conns.iter_mut() {
        c.send(r#"{"op":"ListSessions"}"#);
    }
    let m = conns[0].send(r#"{"op":"Metrics"}"#);
    let t = m.get("transport").expect("transport section");
    assert_eq!(t.get("live_connections").unwrap().as_i64(), Some(8), "{t}");
    let reactors = t
        .get("reactors")
        .unwrap()
        .as_array()
        .expect("reactors array");
    assert_eq!(reactors.len(), 4, "{t}");
    let mut live_sum = 0i64;
    let mut dispatched_sum = 0u64;
    for (i, r) in reactors.iter().enumerate() {
        let live = r.get("live_connections").unwrap().as_i64().unwrap();
        assert_eq!(live, 2, "reactor {i} connection share: {t}");
        live_sum += live;
        dispatched_sum += r.get("dispatched").unwrap().as_u64().unwrap();
    }
    assert_eq!(live_sum, 8);
    // 8 ListSessions + 1 Metrics, all attributed to some reactor.
    assert_eq!(dispatched_sum, 9, "{t}");
    // Reap/shed counters exist and are quiet on a polite workload.
    assert_eq!(t.get("sheds").unwrap().as_u64(), Some(0));
    assert_eq!(t.get("idle_timeouts").unwrap().as_u64(), Some(0));
}
