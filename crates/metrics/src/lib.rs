//! # `jim-metrics` — lock-cheap observability primitives
//!
//! Zero-dependency metrics for the JIM server and its load driver:
//!
//! * [`Counter`] — monotonically increasing `u64`, relaxed atomics.
//! * [`Gauge`] — instantaneous `i64` level (connections, queue depth).
//! * [`Histogram`] — fixed-bucket log-scale latency histogram in the
//!   HDR spirit: 32 linear sub-buckets per power-of-two octave, ≤ ~3.2%
//!   relative error, p50/p90/p99/max readout, exact max.
//! * [`HistogramSnapshot`] — a dense, mergeable copy of a histogram;
//!   merging per-thread snapshots is bit-identical to recording every
//!   sample into one histogram (property-tested).
//! * [`Registry`] — get-or-create named handles; the lock is taken only
//!   at registration and snapshot time, never on the record path.
//!
//! Everything on the hot path is a handful of `Relaxed` atomic ops; a
//! snapshot is a point-in-time copy that may be minutely torn under
//! concurrent writers (counts and sums race by design — observability,
//! not accounting).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level: connections, queue depth, resident sessions.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Move the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^5 = 32 linear buckets per octave.
const SUB_BITS: u32 = 5;
/// Buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Largest tracked exponent; values at or above 2^(MAX_EXP+1) clamp.
/// 2^42 µs ≈ 51 days — far beyond any latency this records.
const MAX_EXP: u32 = 41;
/// Largest exactly-representable clamp point.
const MAX_TRACKABLE: u64 = (1 << (MAX_EXP + 1)) - 1;
/// Total bucket count: one linear run of 32, then 32 per octave for
/// exponents 5..=41.
pub const BUCKETS: usize = SUBS + (MAX_EXP - SUB_BITS + 1) as usize * SUBS;

/// The bucket a value lands in. Values below 32 map exactly; above, the
/// top 5 bits after the leading 1 select a sub-bucket, bounding relative
/// error by 1/32.
fn bucket_index(value: u64) -> usize {
    if value < SUBS as u64 {
        return value as usize;
    }
    let v = value.min(MAX_TRACKABLE);
    let e = 63 - v.leading_zeros();
    let sub = ((v >> (e - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    SUBS + (e - SUB_BITS) as usize * SUBS + sub
}

/// The largest value that lands in bucket `index` (inclusive upper bound).
fn bucket_high(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let rel = index - SUBS;
    let e = (rel / SUBS) as u32 + SUB_BITS;
    let sub = (rel % SUBS) as u64;
    let width = 1u64 << (e - SUB_BITS);
    (1u64 << e) + (sub + 1) * width - 1
}

/// A concurrent log-scale histogram. Recording is three relaxed
/// `fetch_add`s and one `fetch_max`; reading is via [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (~10 KiB of buckets).
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in whole microseconds — the unit every latency
    /// histogram in this workspace uses.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A dense point-in-time copy, safe to merge with other snapshots.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|bucket| bucket.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A dense, owned copy of a [`Histogram`]. Snapshots merge associatively
/// and commutatively: merging per-thread snapshots equals recording all
/// samples into a single histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot of zero samples — the merge identity.
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Fold `other`'s samples into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.wrapping_add(*b);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The exact largest sample, 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]` — the upper bound of the bucket
    /// holding the ⌈q·n⌉-th smallest sample, clamped to the exact max.
    /// 0 if empty. Values below 32 are exact; above, within ~3.2%.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        if rank == total {
            // The top-ranked sample is the max itself — exact even when
            // the sample overflowed into the clamped last bucket.
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Named get-or-create metric handles. Cache the returned `Arc`s on hot
/// paths; the internal lock is touched only here and in
/// [`Registry::snapshot`].
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Registry`], mergeable across
/// threads or processes (counters and gauges add, histograms merge).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Fold `other` into `self` name-by-name.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn buckets_are_exact_below_32() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_at_octave_edges() {
        // First log octave (32..64) still has width-1 buckets.
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_high(63), 63);
        // Second octave (64..128) has width-2 buckets.
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(65), 64);
        assert_eq!(bucket_index(66), 65);
        assert_eq!(bucket_high(64), 65);
        assert_eq!(bucket_index(127), 95);
        assert_eq!(bucket_high(95), 127);
        assert_eq!(bucket_index(128), 96);
    }

    #[test]
    fn bucket_index_is_monotone_and_tight() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < MAX_TRACKABLE / 2 {
            let i = bucket_index(v);
            assert!(i >= prev, "bucket index regressed at {v}");
            prev = i;
            let high = bucket_high(i);
            assert!(high >= v, "v={v} above its bucket bound {high}");
            // Relative error bound: bucket width ≤ v / 32 (+1 for rounding).
            assert!(high - v <= v / 32 + 1, "v={v} bound {high} too loose");
            v = v * 2 + 1;
        }
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(MAX_TRACKABLE), BUCKETS - 1);
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.max(), u64::MAX);
        assert_eq!(s.quantile(0.5), u64::MAX); // clamped to the exact max
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        // quantile() clamps to the exact recorded max, so any one-sample
        // histogram reads back its value exactly at every quantile.
        for v in [0, 1, 31, 32, 63, 64, 1000, 123_456_789] {
            let h = Histogram::new();
            h.record(v);
            let s = h.snapshot();
            for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(s.quantile(q), v, "v={v} q={q}");
            }
        }
    }

    #[test]
    fn percentiles_of_1_to_100() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        assert_eq!(s.max(), 100);
        assert_eq!(s.mean(), 50.5);
        // 1..=63 are exact; above that buckets have width 2, so the
        // readout is the bucket's upper bound.
        assert_eq!(s.p50(), 50);
        assert_eq!(s.p90(), 91); // 90 lands in bucket [90, 91]
        assert_eq!(s.p99(), 99); // 99 lands in bucket [98, 99]
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.quantile(0.0), 1);
    }

    #[test]
    fn quantiles_track_exact_within_bound() {
        let h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * 37); // spread over several octaves
        }
        let s = h.snapshot();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = ((q * 10_000f64).ceil() as u64 - 1) * 37;
            let got = s.quantile(q);
            assert!(got >= exact, "q={q}: {got} < exact {exact}");
            assert!(got - exact <= exact / 16 + 1, "q={q}: {got} vs {exact}");
        }
    }

    #[test]
    fn empty_snapshot_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s, HistogramSnapshot::empty());
    }

    #[test]
    fn merge_identity_and_concatenation() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 50, 700] {
            a.record(v);
        }
        for v in [9u64, 50, 123_456] {
            b.record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        merged.merge(&a.snapshot());
        merged.merge(&b.snapshot());
        let all = Histogram::new();
        for v in [3u64, 50, 700, 9, 50, 123_456] {
            all.record(v);
        }
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        let c1 = r.counter("requests");
        let c2 = r.counter("requests");
        c1.inc();
        c2.inc();
        assert_eq!(r.counter("requests").get(), 2);
        assert!(Arc::ptr_eq(&c1, &c2));
        r.gauge("depth").set(5);
        r.histogram("lat").record(10);
        let snap = r.snapshot();
        assert_eq!(snap.counters["requests"], 2);
        assert_eq!(snap.gauges["depth"], 5);
        assert_eq!(snap.histograms["lat"].count(), 1);
    }

    #[test]
    fn registry_snapshot_merge() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter("x").add(2);
        r2.counter("x").add(3);
        r2.counter("y").inc();
        r1.gauge("g").set(4);
        r2.gauge("g").set(-1);
        r1.histogram("h").record(7);
        r2.histogram("h").record(9);
        let mut s = r1.snapshot();
        s.merge(&r2.snapshot());
        assert_eq!(s.counters["x"], 5);
        assert_eq!(s.counters["y"], 1);
        assert_eq!(s.gauges["g"], 3);
        assert_eq!(s.histograms["h"].count(), 2);
        assert_eq!(s.histograms["h"].max(), 9);
    }
}
