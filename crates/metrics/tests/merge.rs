//! Property: merging per-thread histogram snapshots is bit-identical to
//! recording every sample into a single histogram — the invariant
//! `jim-load` relies on when it aggregates per-worker latency.

#![forbid(unsafe_code)]

use jim_metrics::{Histogram, HistogramSnapshot, Registry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merged_snapshots_equal_single_histogram(
        threads in proptest::collection::vec(
            proptest::collection::vec(0u64..2_000_000_000, 0..=50),
            1..=8,
        ),
    ) {
        let one = Histogram::new();
        let mut merged = HistogramSnapshot::empty();
        for samples in &threads {
            let per_thread = Histogram::new();
            for &v in samples {
                per_thread.record(v);
                one.record(v);
            }
            merged.merge(&per_thread.snapshot());
        }
        prop_assert_eq!(&merged, &one.snapshot());
        let n: usize = threads.iter().map(Vec::len).sum();
        prop_assert_eq!(merged.count(), n as u64);
    }

    #[test]
    fn merge_order_does_not_matter(
        a in proptest::collection::vec(0u64..1_000_000, 0..=30),
        b in proptest::collection::vec(0u64..1_000_000, 0..=30),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        let (sa, sb) = (ha.snapshot(), hb.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.max(), sa.max().max(sb.max()));
    }

    #[test]
    fn registry_merge_matches_single_registry(
        xs in proptest::collection::vec(0u64..100_000, 0..=20),
        ys in proptest::collection::vec(0u64..100_000, 0..=20),
    ) {
        let single = Registry::new();
        let left = Registry::new();
        let right = Registry::new();
        for &v in &xs {
            left.counter("n").inc();
            left.histogram("lat").record(v);
            single.counter("n").inc();
            single.histogram("lat").record(v);
        }
        for &v in &ys {
            right.counter("n").inc();
            right.histogram("lat").record(v);
            single.counter("n").inc();
            single.histogram("lat").record(v);
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        prop_assert_eq!(merged, single.snapshot());
    }
}
