//! Backend equivalence: every kernel, on every backend available on this
//! CPU, must agree bit-for-bit with the scalar (`off`) reference over
//! random inputs — including slice lengths that exercise both the 4-word
//! vector body and the 0–3-word scalar tail (the word-level shape of
//! non-multiple-of-64 bitset capacities).
//!
//! These tests call the per-backend kernels ([`Backend::popcount`] & co)
//! directly rather than the dispatching free functions, so they cover
//! `generic` and `avx2` even when a `JIM_SIMD` override pins the active
//! backend to something else, and never touch the global dispatch state
//! (which keeps them race-free under the parallel test runner).

#![forbid(unsafe_code)]

use jim_simd::Backend;
use proptest::prelude::*;

/// Backends to pin against the scalar reference.
fn candidates() -> impl Iterator<Item = Backend> {
    Backend::ALL
        .into_iter()
        .filter(|b| *b != Backend::Off && b.available())
}

/// A random word slice of the given length, with a bias toward dense and
/// near-subset patterns (uniform u64 pairs almost never satisfy ⊆, which
/// would leave the subset kernels' early-accept paths untested).
fn words(len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), len)
}

/// A masked copy: `base & mask` is always ⊆ `base`.
fn masked(base: &[u64], mask: &[u64]) -> Vec<u64> {
    base.iter().zip(mask.iter()).map(|(&b, &m)| b & m).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn unary_and_binary_kernels_agree(
        len in 0usize..=19,
        seed_a in words(19),
        seed_b in words(19),
    ) {
        let a = &seed_a[..len];
        let b = &seed_b[..len];
        let sub = masked(a, b); // ⊆ a by construction
        for backend in candidates() {
            prop_assert_eq!(backend.popcount(a), Backend::Off.popcount(a), "{}", backend);
            prop_assert_eq!(backend.subset(a, b), Backend::Off.subset(a, b), "{}", backend);
            prop_assert_eq!(backend.subset(&sub, a), Backend::Off.subset(&sub, a), "{}", backend);
            prop_assert!(backend.subset(&sub, a), "{}: masked copy must be ⊆", backend);
            prop_assert_eq!(backend.intersects(a, b), Backend::Off.intersects(a, b), "{}", backend);
            prop_assert_eq!(
                backend.intersection_count(a, b),
                Backend::Off.intersection_count(a, b),
                "{}", backend
            );
            let mut got = vec![0u64; len];
            let mut want = vec![0u64; len];
            backend.and_into(a, b, &mut got);
            Backend::Off.and_into(a, b, &mut want);
            prop_assert_eq!(&got, &want, "{} and_into", backend);
            backend.or_into(a, b, &mut got);
            Backend::Off.or_into(a, b, &mut want);
            prop_assert_eq!(&got, &want, "{} or_into", backend);
            backend.and_not_into(a, b, &mut got);
            Backend::Off.and_not_into(a, b, &mut want);
            prop_assert_eq!(&got, &want, "{} and_not_into", backend);
            let mut got = a.to_vec();
            let mut want = a.to_vec();
            backend.and_assign(&mut got, b);
            Backend::Off.and_assign(&mut want, b);
            prop_assert_eq!(&got, &want, "{} and_assign", backend);
        }
    }

    #[test]
    fn batch_kernels_agree(
        width in 1usize..=9,
        nrows in 0usize..=12,
        nnegs in 0usize..=6,
        seed in words(9 * 12),
        negseed in words(9 * 6),
        maskseed in words(9 * 6),
    ) {
        let rows = &seed[..width * nrows];
        // Half the negs are masked copies of rows (guaranteed ⊇⊆ hits),
        // half are random.
        let mut negs: Vec<u64> = Vec::with_capacity(width * nnegs);
        for i in 0..nnegs {
            let chunk = &negseed[i * width..(i + 1) * width];
            if i % 2 == 0 && nrows > 0 {
                let row = &rows[(i % nrows) * width..(i % nrows + 1) * width];
                // A superset of a row: row | mask.
                let mask = &maskseed[i * width..(i + 1) * width];
                negs.extend(row.iter().zip(mask.iter()).map(|(&r, &m)| r | m));
            } else {
                negs.extend_from_slice(chunk);
            }
        }
        let mut want = Vec::new();
        Backend::Off.subsumed_mask(rows, &negs, width, &mut want);
        prop_assert_eq!(want.len(), nrows);
        for backend in candidates() {
            let mut got = vec![true; 99]; // stale contents must be overwritten
            backend.subsumed_mask(rows, &negs, width, &mut got);
            prop_assert_eq!(&got, &want, "{} subsumed_mask", backend);
            for r in 0..nrows {
                let row = &rows[r * width..(r + 1) * width];
                prop_assert_eq!(
                    backend.subset_any(row, &negs),
                    Backend::Off.subset_any(row, &negs),
                    "{} subset_any", backend
                );
                prop_assert_eq!(backend.subset_any(row, &negs), want[r], "{}", backend);
            }
        }
    }

    #[test]
    fn counting_kernels_agree_past_the_vector_popcount_threshold(
        len in 60usize..=133,
        seed_a in words(133),
        seed_b in words(133),
    ) {
        // Lengths straddling the 64-word switch to the nibble-LUT vector
        // popcount: below it (scalar popcnt path), exactly at it, and
        // beyond with every tail shape (len % 8 covers 0..=7 leftover
        // words after the two-vector loop).
        let a = &seed_a[..len];
        let b = &seed_b[..len];
        for backend in candidates() {
            prop_assert_eq!(backend.popcount(a), Backend::Off.popcount(a), "{}", backend);
            prop_assert_eq!(
                backend.intersection_count(a, b),
                Backend::Off.intersection_count(a, b),
                "{}", backend
            );
        }
    }

    #[test]
    fn tail_words_beyond_the_vector_body_matter(
        body in words(4),
        tail_a in any::<u64>(),
        tail_b in any::<u64>(),
    ) {
        // 5 words: one full 256-bit chunk + a 1-word tail. A disagreement
        // confined to the tail must flip the verdicts on every backend.
        let mut a: Vec<u64> = body.clone();
        a.push(tail_a);
        let mut b: Vec<u64> = body.clone();
        b.push(tail_b);
        for backend in candidates() {
            prop_assert_eq!(backend.subset(&a, &b), Backend::Off.subset(&a, &b));
            prop_assert_eq!(backend.popcount(&a), Backend::Off.popcount(&a));
            prop_assert_eq!(
                backend.intersection_count(&a, &b),
                Backend::Off.intersection_count(&a, &b)
            );
        }
    }
}

/// The scalar reference itself is pinned against brute force once, so the
/// property tests above anchor to known-good semantics.
#[test]
fn scalar_reference_matches_brute_force() {
    let a = [0b1011u64, u64::MAX, 0, 1 << 63];
    let b = [0b0011u64, u64::MAX, 7, 1 << 63];
    let brute_pop = |s: &[u64]| -> u64 {
        s.iter()
            .map(|w| (0..64).filter(|i| w >> i & 1 == 1).count() as u64)
            .sum()
    };
    assert_eq!(Backend::Off.popcount(&a), brute_pop(&a));
    assert_eq!(
        Backend::Off.intersection_count(&a, &b),
        brute_pop(
            &a.iter()
                .zip(b.iter())
                .map(|(&x, &y)| x & y)
                .collect::<Vec<_>>()
        )
    );
    assert!(!Backend::Off.subset(&a, &b)); // bit 3 of word 0 strays
    assert!(Backend::Off.subset(&b[..2], &a[..2]));
    assert!(Backend::Off.intersects(&a, &b));
    assert!(!Backend::Off.intersects(&[0, 0], &[u64::MAX, u64::MAX]));
}
