//! The `off` backend: plain word-at-a-time scalar loops.
//!
//! These are the reference semantics — exactly the loops `jim-core`'s
//! bitset ran before the kernel crate existed. The equivalence property
//! tests pin every other backend against this module, and `JIM_SIMD=off`
//! selects it at runtime for A/B measurement and for ruling the kernel
//! layer out when debugging.

/// Number of set bits across the slice.
pub fn popcount(a: &[u64]) -> u64 {
    a.iter().map(|&w| w.count_ones() as u64).sum()
}

/// `a ⊆ b`, i.e. `a & !b == 0` word-wise. Slices must be equal length.
pub fn subset(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b.iter()).all(|(&x, &y)| x & !y == 0)
}

/// True iff the slices share at least one set bit.
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b.iter()).any(|(&x, &y)| x & y != 0)
}

/// `|a ∩ b|`.
pub fn intersection_count(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x & y).count_ones() as u64)
        .sum()
}

/// `out = a & b`.
pub fn and_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x & y;
    }
}

/// `a &= b` in place.
pub fn and_assign(a: &mut [u64], b: &[u64]) {
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x &= y;
    }
}

/// `out = a | b`.
pub fn or_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x | y;
    }
}

/// `out = a & !b`.
pub fn and_not_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x & !y;
    }
}

/// `x ⊆ r` for some row `r` of `rows` (row-major, width = `x.len()`).
/// A zero-width `x` encodes no rows at all, so the answer is `false`.
pub fn subset_any(x: &[u64], rows: &[u64]) -> bool {
    let w = x.len();
    if w == 0 {
        return false;
    }
    // Index arithmetic, not per-row `chunks_exact`: re-deriving the chunk
    // count costs a 64-bit division per call, which dwarfs the subset
    // test itself at antichain widths.
    let n = rows.len() / w;
    (0..n).any(|j| subset(x, &rows[j * w..j * w + w]))
}

/// For each row of `rows`, whether it is `⊆` some row of `negs`; both are
/// row-major with the given `width`. `out` is overwritten.
pub fn subsumed_mask(rows: &[u64], negs: &[u64], width: usize, out: &mut Vec<bool>) {
    out.clear();
    if width == 0 {
        return;
    }
    // Hoist the row counts: one division each, not one per row.
    let nnegs = negs.len() / width;
    if nnegs == 1 {
        // The common sweep — one fresh negative per label batch. Slicing
        // it once lets the row loop run without per-row index math.
        let neg = &negs[..width];
        out.extend(rows.chunks_exact(width).map(|row| subset(row, neg)));
        return;
    }
    out.extend(
        rows.chunks_exact(width)
            .map(|row| (0..nnegs).any(|j| subset(row, &negs[j * width..j * width + width]))),
    );
}
