//! The x86_64 AVX2 backend.
//!
//! Every function here carries `#[target_feature(enable = "avx2,popcnt")]`:
//! the compiler emits 256-bit bitwise ops and the hardware `popcnt`
//! instruction, and callers outside an AVX2 context must prove the
//! features are present before calling (the dispatch layer in `lib.rs`
//! does, via `is_x86_feature_detected!`). This module is the workspace's
//! second `unsafe` surface after `jim-aio`, and like there the unsafety
//! is confined: raw-pointer vector loads inside bounds-checked loops,
//! nothing else.
//!
//! Kernel notes:
//!
//! * `subset` / `intersects` test four words per step with
//!   `vpandn` + `vptest` — the AND-NOT-is-empty form of `a ⊆ b`.
//! * `popcount` / `intersection_count` use scalar `popcnt`, four
//!   accumulators wide, at jim's usual working sizes (≤ a few dozen
//!   words per signature). Past [`VECTOR_POPCOUNT_WORDS`] they switch to
//!   the `vpshufb` nibble-LUT vector popcount (`popcount_nibble_lut`):
//!   each 256-bit vector is split into low/high nibbles, both looked up
//!   in an in-register 16-entry bit-count table, and the per-byte counts
//!   collapse into four 64-bit lane sums via `vpsadbw` — 64 bytes of
//!   bitset per loop with no port-1 `popcnt` bottleneck, which is where
//!   the big factorized-construction arenas live.
//! * The batch entry points (`subset_any`, `subsumed_mask`) stay inside
//!   the feature context for the whole sweep: one runtime dispatch per
//!   sweep, not per pair.

use std::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_andnot_si256,
    _mm256_loadu_si256, _mm256_or_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8,
    _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_testz_si256,
};

/// Words per 256-bit vector step.
const LANES: usize = 4;

/// Slice length (in words) at which the nibble-LUT vector popcount
/// overtakes four scalar `popcnt` accumulators: the LUT path carries
/// fixed setup (constants, the final lane fold) and only out-throughputs
/// `popcnt` once the loop runs long enough to amortize it.
const VECTOR_POPCOUNT_WORDS: usize = 64;

/// The per-nibble bit-count table for `vpshufb`, one copy per 128-bit
/// half (the shuffle looks up within each half independently).
#[target_feature(enable = "avx2")]
fn nibble_lut() -> __m256i {
    _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    )
}

/// Per-byte set-bit counts of one vector: both nibbles through the LUT.
/// Every byte of the result is ≤ 8.
#[target_feature(enable = "avx2")]
fn byte_counts(v: __m256i, lut: __m256i, low: __m256i) -> __m256i {
    let lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, low));
    let hi = _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi16::<4>(v), low));
    _mm256_add_epi8(lo, hi)
}

/// True iff the CPU supports this backend (AVX2 + POPCNT).
pub fn available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("popcnt")
}

// --- Safe entry points -------------------------------------------------
//
// The `*_kernel` functions below carry `#[target_feature]`, so calling
// one is `unsafe` (the caller asserts the CPU features exist). These
// wrappers are the only place that obligation is discharged: the
// dispatch layer in `lib.rs` routes to `Backend::Avx2` strictly behind
// `Backend::checked()`, which demotes the backend unless [`available`]
// — i.e. `is_x86_feature_detected!` — passed. That keeps every
// `unsafe` token in this one file (jim-lint rule `unsafe` enforces it),
// and the debug assertion catches any future caller that conjures the
// backend without detection.

macro_rules! checked_entry {
    () => {
        debug_assert!(
            available(),
            "AVX2 entry without feature detection; route through Backend::checked()"
        )
    };
}

/// Number of set bits across the slice.
pub fn popcount(a: &[u64]) -> u64 {
    checked_entry!();
    // SAFETY: detection proved avx2+popcnt (see module comment above).
    unsafe { popcount_kernel(a) }
}

/// `a ⊆ b`, i.e. `a & !b == 0`.
pub fn subset(a: &[u64], b: &[u64]) -> bool {
    checked_entry!();
    // SAFETY: detection proved avx2+popcnt.
    unsafe { subset_kernel(a, b) }
}

/// True iff the slices share at least one set bit.
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    checked_entry!();
    // SAFETY: detection proved avx2+popcnt.
    unsafe { intersects_kernel(a, b) }
}

/// `|a ∩ b|`.
pub fn intersection_count(a: &[u64], b: &[u64]) -> u64 {
    checked_entry!();
    // SAFETY: detection proved avx2+popcnt.
    unsafe { intersection_count_kernel(a, b) }
}

/// `out = a & b`.
pub fn and_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    checked_entry!();
    // SAFETY: detection proved avx2+popcnt.
    unsafe { and_into_kernel(a, b, out) }
}

/// `a &= b` in place.
pub fn and_assign(a: &mut [u64], b: &[u64]) {
    checked_entry!();
    // SAFETY: detection proved avx2+popcnt.
    unsafe { and_assign_kernel(a, b) }
}

/// `out = a | b`.
pub fn or_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    checked_entry!();
    // SAFETY: detection proved avx2+popcnt.
    unsafe { or_into_kernel(a, b, out) }
}

/// `out = a & !b`.
pub fn and_not_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    checked_entry!();
    // SAFETY: detection proved avx2+popcnt.
    unsafe { and_not_into_kernel(a, b, out) }
}

/// `x ⊆ r` for some row `r` of `rows` (row-major, width = `x.len()`).
pub fn subset_any(x: &[u64], rows: &[u64]) -> bool {
    checked_entry!();
    // SAFETY: detection proved avx2+popcnt.
    unsafe { subset_any_kernel(x, rows) }
}

/// For each row of `rows`, whether it is `⊆` some row of `negs`.
pub fn subsumed_mask(rows: &[u64], negs: &[u64], width: usize, out: &mut Vec<bool>) {
    checked_entry!();
    // SAFETY: detection proved avx2+popcnt.
    unsafe { subsumed_mask_kernel(rows, negs, width, out) }
}

// --- Kernels -----------------------------------------------------------

/// Number of set bits across the slice.
#[target_feature(enable = "avx2,popcnt")]
fn popcount_kernel(a: &[u64]) -> u64 {
    if a.len() >= VECTOR_POPCOUNT_WORDS {
        return popcount_nibble_lut(a);
    }
    let mut chunks = a.chunks_exact(LANES);
    let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
    for c in chunks.by_ref() {
        c0 += c[0].count_ones() as u64;
        c1 += c[1].count_ones() as u64;
        c2 += c[2].count_ones() as u64;
        c3 += c[3].count_ones() as u64;
    }
    let tail: u64 = chunks
        .remainder()
        .iter()
        .map(|&w| w.count_ones() as u64)
        .sum();
    c0 + c1 + c2 + c3 + tail
}

/// Fold four 64-bit lane sums into one scalar.
#[target_feature(enable = "avx2")]
fn lane_sum(acc: __m256i) -> u64 {
    // SAFETY: `__m256i` is plain 256-bit data, layout-identical to four
    // `u64` lanes.
    let lanes: [u64; LANES] = unsafe { std::mem::transmute(acc) };
    lanes[0] + lanes[1] + lanes[2] + lanes[3]
}

/// The Muła `vpshufb` nibble-LUT popcount — two vectors (eight words)
/// per step. Each vector's bytes turn into per-byte set-bit counts
/// (≤ 8); summing two such vectors with `_mm256_add_epi8` stays ≤ 16,
/// far under a byte's 255 ceiling, so one `vpsadbw` per step collapses
/// both into the 64-bit lane accumulator.
#[target_feature(enable = "avx2")]
fn popcount_nibble_lut(a: &[u64]) -> u64 {
    let lut = nibble_lut();
    let low = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    let mut acc = zero;
    let mut i = 0usize;
    while i + 2 * LANES <= a.len() {
        // SAFETY: `i + 2·LANES <= len` bounds both loads.
        let (v0, v1) = unsafe { (load(a, i), load(a, i + LANES)) };
        let bytes = _mm256_add_epi8(byte_counts(v0, lut, low), byte_counts(v1, lut, low));
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
        i += 2 * LANES;
    }
    lane_sum(acc) + a[i..].iter().map(|&w| w.count_ones() as u64).sum::<u64>()
}

/// Load one 256-bit vector from `words[i..i + 4]`.
///
/// # Safety
/// `i + 4 <= words.len()` must hold (`loadu` itself has no alignment
/// requirement).
#[target_feature(enable = "avx2")]
unsafe fn load(words: &[u64], i: usize) -> __m256i {
    debug_assert!(i + LANES <= words.len());
    // SAFETY: caller guarantees the 4-word window is in bounds.
    unsafe { _mm256_loadu_si256(words.as_ptr().add(i) as *const __m256i) }
}

/// `a ⊆ b`, i.e. `a & !b == 0` — `vpandn` + `vptest`, eight words per
/// step (two vectors, strays OR-combined so each step pays one `vptest`).
#[target_feature(enable = "avx2,popcnt")]
fn subset_kernel(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + 2 * LANES <= n {
        // SAFETY: `i + 2·LANES <= n` bounds all four loads.
        let (va0, vb0) = unsafe { (load(a, i), load(b, i)) };
        let (va1, vb1) = unsafe { (load(a, i + LANES), load(b, i + LANES)) };
        // andnot(b, a) = !b & a: the bits of `a` that stray outside `b`.
        let stray = _mm256_or_si256(_mm256_andnot_si256(vb0, va0), _mm256_andnot_si256(vb1, va1));
        if _mm256_testz_si256(stray, stray) == 0 {
            return false;
        }
        i += 2 * LANES;
    }
    if i + LANES <= n {
        // SAFETY: `i + LANES <= n` bounds both loads.
        let (va, vb) = unsafe { (load(a, i), load(b, i)) };
        let stray = _mm256_andnot_si256(vb, va);
        if _mm256_testz_si256(stray, stray) == 0 {
            return false;
        }
        i += LANES;
    }
    a[i..n].iter().zip(&b[i..n]).all(|(&x, &y)| x & !y == 0)
}

/// True iff the slices share at least one set bit.
#[target_feature(enable = "avx2,popcnt")]
fn intersects_kernel(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + LANES <= n {
        // SAFETY: `i + LANES <= n` bounds both loads.
        let (va, vb) = unsafe { (load(a, i), load(b, i)) };
        if _mm256_testz_si256(va, vb) == 0 {
            return true;
        }
        i += LANES;
    }
    a[i..n].iter().zip(&b[i..n]).any(|(&x, &y)| x & y != 0)
}

/// `|a ∩ b|` — vector AND, scalar `popcnt` per word; past
/// [`VECTOR_POPCOUNT_WORDS`] the AND feeds the nibble-LUT counter
/// instead, so the whole kernel stays in vector registers.
#[target_feature(enable = "avx2,popcnt")]
fn intersection_count_kernel(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    if n >= VECTOR_POPCOUNT_WORDS {
        return intersection_count_nibble_lut(&a[..n], &b[..n]);
    }
    let mut i = 0usize;
    let mut acc = 0u64;
    while i + LANES <= n {
        // SAFETY: `i + LANES <= n` bounds both loads.
        let (va, vb) = unsafe { (load(a, i), load(b, i)) };
        let and = _mm256_and_si256(va, vb);
        // SAFETY: `__m256i` is plain 256-bit data, layout-identical to
        // four `u64` lanes.
        let words: [u64; LANES] = unsafe { std::mem::transmute(and) };
        acc += words[0].count_ones() as u64
            + words[1].count_ones() as u64
            + words[2].count_ones() as u64
            + words[3].count_ones() as u64;
        i += LANES;
    }
    acc + a[i..n]
        .iter()
        .zip(&b[i..n])
        .map(|(&x, &y)| (x & y).count_ones() as u64)
        .sum::<u64>()
}

/// The large-slice body of [`intersection_count`]: AND two vector pairs
/// per step and run the result through the same nibble-LUT byte counts
/// as [`popcount_nibble_lut`]. Caller has equalized the lengths.
#[target_feature(enable = "avx2")]
fn intersection_count_nibble_lut(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let lut = nibble_lut();
    let low = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    let mut acc = zero;
    let mut i = 0usize;
    while i + 2 * LANES <= a.len() {
        // SAFETY: `i + 2·LANES <= len` bounds all four loads.
        let (va0, vb0) = unsafe { (load(a, i), load(b, i)) };
        let (va1, vb1) = unsafe { (load(a, i + LANES), load(b, i + LANES)) };
        let and0 = _mm256_and_si256(va0, vb0);
        let and1 = _mm256_and_si256(va1, vb1);
        let bytes = _mm256_add_epi8(byte_counts(and0, lut, low), byte_counts(and1, lut, low));
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
        i += 2 * LANES;
    }
    lane_sum(acc)
        + a[i..]
            .iter()
            .zip(&b[i..])
            .map(|(&x, &y)| (x & y).count_ones() as u64)
            .sum::<u64>()
}

/// `out = a & b`.
#[target_feature(enable = "avx2,popcnt")]
fn and_into_kernel(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x & y;
    }
}

/// `a &= b` in place.
#[target_feature(enable = "avx2,popcnt")]
fn and_assign_kernel(a: &mut [u64], b: &[u64]) {
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x &= y;
    }
}

/// `out = a | b`.
#[target_feature(enable = "avx2,popcnt")]
fn or_into_kernel(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x | y;
    }
}

/// `out = a & !b`.
#[target_feature(enable = "avx2,popcnt")]
fn and_not_into_kernel(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x & !y;
    }
}

/// `x ⊆ r` for some row `r` of `rows` (row-major, width = `x.len()`).
/// A zero-width `x` encodes no rows at all, so the answer is `false`.
#[target_feature(enable = "avx2,popcnt")]
fn subset_any_kernel(x: &[u64], rows: &[u64]) -> bool {
    let w = x.len();
    if w == 0 {
        return false;
    }
    // Index arithmetic, not per-row `chunks_exact`: re-deriving the chunk
    // count costs a 64-bit division per call, which dwarfs the subset
    // test itself at antichain widths.
    let n = rows.len() / w;
    (0..n).any(|j| subset_kernel(x, &rows[j * w..j * w + w]))
}

/// For each row of `rows`, whether it is `⊆` some row of `negs`; both are
/// row-major with the given `width`. `out` is overwritten.
#[target_feature(enable = "avx2,popcnt")]
fn subsumed_mask_kernel(rows: &[u64], negs: &[u64], width: usize, out: &mut Vec<bool>) {
    out.clear();
    if width == 0 {
        return;
    }
    // Hoist the row counts: one division each, not one per row.
    let nnegs = negs.len() / width;
    if nnegs == 1 {
        // The common sweep — one fresh negative per label batch. Slicing
        // it once lets the row loop run without per-row index math.
        let neg = &negs[..width];
        out.extend(rows.chunks_exact(width).map(|row| subset_kernel(row, neg)));
        return;
    }
    out.extend(
        rows.chunks_exact(width)
            .map(|row| (0..nnegs).any(|j| subset_kernel(row, &negs[j * width..j * width + width]))),
    );
}
