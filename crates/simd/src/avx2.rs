//! The x86_64 AVX2 backend.
//!
//! Every function here carries `#[target_feature(enable = "avx2,popcnt")]`:
//! the compiler emits 256-bit bitwise ops and the hardware `popcnt`
//! instruction, and callers outside an AVX2 context must prove the
//! features are present before calling (the dispatch layer in `lib.rs`
//! does, via `is_x86_feature_detected!`). This module is the workspace's
//! second `unsafe` surface after `jim-aio`, and like there the unsafety
//! is confined: raw-pointer vector loads inside bounds-checked loops,
//! nothing else.
//!
//! Kernel notes:
//!
//! * `subset` / `intersects` test four words per step with
//!   `vpandn` + `vptest` — the AND-NOT-is-empty form of `a ⊆ b`.
//! * `popcount` / `intersection_count` use scalar `popcnt`, four
//!   accumulators wide. At jim's working sizes (≤ a few dozen words per
//!   signature) that beats the pshufb nibble-LUT vector popcount, which
//!   only wins past ~64 words.
//! * The batch entry points (`subset_any`, `subsumed_mask`) stay inside
//!   the feature context for the whole sweep: one runtime dispatch per
//!   sweep, not per pair.

use std::arch::x86_64::{
    __m256i, _mm256_and_si256, _mm256_andnot_si256, _mm256_loadu_si256, _mm256_or_si256,
    _mm256_testz_si256,
};

/// Words per 256-bit vector step.
const LANES: usize = 4;

/// True iff the CPU supports this backend (AVX2 + POPCNT).
pub fn available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("popcnt")
}

/// Number of set bits across the slice.
#[target_feature(enable = "avx2,popcnt")]
pub fn popcount(a: &[u64]) -> u64 {
    let mut chunks = a.chunks_exact(LANES);
    let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
    for c in chunks.by_ref() {
        c0 += c[0].count_ones() as u64;
        c1 += c[1].count_ones() as u64;
        c2 += c[2].count_ones() as u64;
        c3 += c[3].count_ones() as u64;
    }
    let tail: u64 = chunks
        .remainder()
        .iter()
        .map(|&w| w.count_ones() as u64)
        .sum();
    c0 + c1 + c2 + c3 + tail
}

/// Load one 256-bit vector from `words[i..i + 4]`.
///
/// # Safety
/// `i + 4 <= words.len()` must hold (`loadu` itself has no alignment
/// requirement).
#[target_feature(enable = "avx2")]
unsafe fn load(words: &[u64], i: usize) -> __m256i {
    debug_assert!(i + LANES <= words.len());
    // SAFETY: caller guarantees the 4-word window is in bounds.
    unsafe { _mm256_loadu_si256(words.as_ptr().add(i) as *const __m256i) }
}

/// `a ⊆ b`, i.e. `a & !b == 0` — `vpandn` + `vptest`, eight words per
/// step (two vectors, strays OR-combined so each step pays one `vptest`).
#[target_feature(enable = "avx2,popcnt")]
pub fn subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + 2 * LANES <= n {
        // SAFETY: `i + 2·LANES <= n` bounds all four loads.
        let (va0, vb0) = unsafe { (load(a, i), load(b, i)) };
        let (va1, vb1) = unsafe { (load(a, i + LANES), load(b, i + LANES)) };
        // andnot(b, a) = !b & a: the bits of `a` that stray outside `b`.
        let stray = _mm256_or_si256(_mm256_andnot_si256(vb0, va0), _mm256_andnot_si256(vb1, va1));
        if _mm256_testz_si256(stray, stray) == 0 {
            return false;
        }
        i += 2 * LANES;
    }
    if i + LANES <= n {
        // SAFETY: `i + LANES <= n` bounds both loads.
        let (va, vb) = unsafe { (load(a, i), load(b, i)) };
        let stray = _mm256_andnot_si256(vb, va);
        if _mm256_testz_si256(stray, stray) == 0 {
            return false;
        }
        i += LANES;
    }
    a[i..n].iter().zip(&b[i..n]).all(|(&x, &y)| x & !y == 0)
}

/// True iff the slices share at least one set bit.
#[target_feature(enable = "avx2,popcnt")]
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + LANES <= n {
        // SAFETY: `i + LANES <= n` bounds both loads.
        let (va, vb) = unsafe { (load(a, i), load(b, i)) };
        if _mm256_testz_si256(va, vb) == 0 {
            return true;
        }
        i += LANES;
    }
    a[i..n].iter().zip(&b[i..n]).any(|(&x, &y)| x & y != 0)
}

/// `|a ∩ b|` — vector AND, scalar `popcnt` per word.
#[target_feature(enable = "avx2,popcnt")]
pub fn intersection_count(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let mut i = 0usize;
    let mut acc = 0u64;
    while i + LANES <= n {
        // SAFETY: `i + LANES <= n` bounds both loads.
        let (va, vb) = unsafe { (load(a, i), load(b, i)) };
        let and = _mm256_and_si256(va, vb);
        // SAFETY: `__m256i` is plain 256-bit data, layout-identical to
        // four `u64` lanes.
        let words: [u64; LANES] = unsafe { std::mem::transmute(and) };
        acc += words[0].count_ones() as u64
            + words[1].count_ones() as u64
            + words[2].count_ones() as u64
            + words[3].count_ones() as u64;
        i += LANES;
    }
    acc + a[i..n]
        .iter()
        .zip(&b[i..n])
        .map(|(&x, &y)| (x & y).count_ones() as u64)
        .sum::<u64>()
}

/// `out = a & b`.
#[target_feature(enable = "avx2,popcnt")]
pub fn and_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x & y;
    }
}

/// `a &= b` in place.
#[target_feature(enable = "avx2,popcnt")]
pub fn and_assign(a: &mut [u64], b: &[u64]) {
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x &= y;
    }
}

/// `out = a | b`.
#[target_feature(enable = "avx2,popcnt")]
pub fn or_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x | y;
    }
}

/// `out = a & !b`.
#[target_feature(enable = "avx2,popcnt")]
pub fn and_not_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x & !y;
    }
}

/// `x ⊆ r` for some row `r` of `rows` (row-major, width = `x.len()`).
/// A zero-width `x` encodes no rows at all, so the answer is `false`.
#[target_feature(enable = "avx2,popcnt")]
pub fn subset_any(x: &[u64], rows: &[u64]) -> bool {
    let w = x.len();
    if w == 0 {
        return false;
    }
    // Index arithmetic, not per-row `chunks_exact`: re-deriving the chunk
    // count costs a 64-bit division per call, which dwarfs the subset
    // test itself at antichain widths.
    let n = rows.len() / w;
    (0..n).any(|j| subset(x, &rows[j * w..j * w + w]))
}

/// For each row of `rows`, whether it is `⊆` some row of `negs`; both are
/// row-major with the given `width`. `out` is overwritten.
#[target_feature(enable = "avx2,popcnt")]
pub fn subsumed_mask(rows: &[u64], negs: &[u64], width: usize, out: &mut Vec<bool>) {
    out.clear();
    if width == 0 {
        return;
    }
    // Hoist the row counts: one division each, not one per row.
    let nnegs = negs.len() / width;
    if nnegs == 1 {
        // The common sweep — one fresh negative per label batch. Slicing
        // it once lets the row loop run without per-row index math.
        let neg = &negs[..width];
        out.extend(rows.chunks_exact(width).map(|row| subset(row, neg)));
        return;
    }
    out.extend(
        rows.chunks_exact(width)
            .map(|row| (0..nnegs).any(|j| subset(row, &negs[j * width..j * width + width]))),
    );
}
