//! # `jim-simd` — runtime-dispatched kernels for the bitset hot loops
//!
//! Every step of JIM's inference — signature computation `Θ(t)`, the
//! upper bound `U`, negative-antichain subsumption sweeps, the
//! informative-group partition — reduces to subset / AND-NOT / popcount
//! operations over packed `u64` bitsets. This crate provides those
//! kernels once, behind a runtime backend dispatch, so `jim-core` keeps
//! its `#![forbid(unsafe_code)]` while the hot loops get vectorized:
//!
//! ```text
//!           ┌───────────────────────────────┐
//!           │  dispatch (once per process,  │
//!           │  or once per *sweep* for the  │
//!           │  batch entry points)          │
//!           └──────┬──────────┬─────────┬───┘
//!        JIM_SIMD=off    =generic    =avx2 / auto-detected
//!               │            │           │
//!         scalar.rs    generic.rs    avx2.rs
//!        (reference   (portable 4-  (vpandn+vptest,
//!         word loop)   wide u64)     hardware popcnt)
//! ```
//!
//! * **Backends.** [`Backend::Off`] is the plain word-at-a-time scalar
//!   loop (the reference semantics), [`Backend::Generic`] a portable
//!   4-wide-unrolled `u64` path, [`Backend::Avx2`] the x86_64 vector
//!   path compiled with `#[target_feature(enable = "avx2,popcnt")]` and
//!   guarded by `is_x86_feature_detected!` — never selected on a CPU
//!   that lacks it.
//! * **Selection.** Resolved once per process: an explicit [`force`]
//!   call wins, then the `JIM_SIMD=off|generic|avx2` environment
//!   variable, then the best detected backend ([`Backend::Avx2`] where
//!   available, else [`Backend::Generic`]). [`active`] reports the
//!   choice; servers log it so deployments can confirm AVX2 is live.
//! * **Batch entry points.** [`subset_any`] and [`subsumed_mask`] take
//!   row-major packed buffers and run the whole sweep inside one
//!   backend selection — one dispatch per sweep, not per pair — which
//!   is what `jim-core`'s candidate index calls for its antichain
//!   subsumption sweeps.
//!
//! The per-backend kernels are also exposed as methods on [`Backend`]
//! (e.g. [`Backend::popcount`]) so the equivalence property tests can
//! pin `generic` and `avx2` against the scalar reference directly,
//! whatever backend is active.
//!
//! Like `jim-aio`, this is a deliberately confined `unsafe` surface:
//! every `unsafe` token lives in `avx2.rs` (raw-pointer vector loads
//! plus the safe entry points that discharge the `target_feature`
//! obligation); this file and everything above it are safe Rust, and
//! `jim-lint`'s `unsafe` rule holds the line.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(target_arch = "x86_64")]
mod avx2;
mod generic;
mod scalar;

use std::sync::atomic::{AtomicU8, Ordering};

/// A kernel backend. Ordered worst-to-best so resolution can pick `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// Plain word-at-a-time scalar loops — the reference semantics
    /// (`JIM_SIMD=off`).
    Off,
    /// Portable `u64`-chunked loops, 4-wide unrolled; runs everywhere.
    Generic,
    /// 256-bit AVX2 + hardware popcnt; x86_64 with runtime detection.
    Avx2,
}

impl Backend {
    /// Every backend, worst-to-best.
    pub const ALL: [Backend; 3] = [Backend::Off, Backend::Generic, Backend::Avx2];

    /// The name used by `JIM_SIMD` and reported in logs/metrics.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Off => "off",
            Backend::Generic => "generic",
            Backend::Avx2 => "avx2",
        }
    }

    /// Parse a `JIM_SIMD` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "scalar" => Some(Backend::Off),
            "generic" => Some(Backend::Generic),
            "avx2" => Some(Backend::Avx2),
            _ => None,
        }
    }

    /// True iff this backend can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            Backend::Off | Backend::Generic => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => avx2::available(),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => false,
        }
    }

    /// Number of set bits across the slice.
    pub fn popcount(self, a: &[u64]) -> u64 {
        match self.checked() {
            Backend::Off => scalar::popcount(a),
            Backend::Generic => generic::popcount(a),
            #[cfg(target_arch = "x86_64")]
            // `checked()` only yields Avx2 when detection passed, which is
            // what the safe avx2 entry points debug-assert.
            Backend::Avx2 => avx2::popcount(a),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => unreachable!("unavailable backends are demoted by checked()"),
        }
    }

    /// `a ⊆ b` word-wise (`a & !b == 0`). Slices must be equal length.
    pub fn subset(self, a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        match self.checked() {
            Backend::Off => scalar::subset(a, b),
            Backend::Generic => generic::subset(a, b),
            #[cfg(target_arch = "x86_64")]
            // `checked()` only yields Avx2 when detection passed, which is
            // what the safe avx2 entry points debug-assert.
            Backend::Avx2 => avx2::subset(a, b),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => unreachable!("unavailable backends are demoted by checked()"),
        }
    }

    /// True iff the slices share at least one set bit.
    pub fn intersects(self, a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        match self.checked() {
            Backend::Off => scalar::intersects(a, b),
            Backend::Generic => generic::intersects(a, b),
            #[cfg(target_arch = "x86_64")]
            // `checked()` only yields Avx2 when detection passed, which is
            // what the safe avx2 entry points debug-assert.
            Backend::Avx2 => avx2::intersects(a, b),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => unreachable!("unavailable backends are demoted by checked()"),
        }
    }

    /// `|a ∩ b|`.
    pub fn intersection_count(self, a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        match self.checked() {
            Backend::Off => scalar::intersection_count(a, b),
            Backend::Generic => generic::intersection_count(a, b),
            #[cfg(target_arch = "x86_64")]
            // `checked()` only yields Avx2 when detection passed, which is
            // what the safe avx2 entry points debug-assert.
            Backend::Avx2 => avx2::intersection_count(a, b),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => unreachable!("unavailable backends are demoted by checked()"),
        }
    }

    /// `out = a & b`. All three slices must be equal length.
    pub fn and_into(self, a: &[u64], b: &[u64], out: &mut [u64]) {
        debug_assert!(a.len() == b.len() && b.len() == out.len());
        match self.checked() {
            Backend::Off => scalar::and_into(a, b, out),
            Backend::Generic => generic::and_into(a, b, out),
            #[cfg(target_arch = "x86_64")]
            // `checked()` only yields Avx2 when detection passed, which is
            // what the safe avx2 entry points debug-assert.
            Backend::Avx2 => avx2::and_into(a, b, out),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => unreachable!("unavailable backends are demoted by checked()"),
        }
    }

    /// `a &= b` in place. Slices must be equal length.
    pub fn and_assign(self, a: &mut [u64], b: &[u64]) {
        debug_assert_eq!(a.len(), b.len());
        match self.checked() {
            Backend::Off => scalar::and_assign(a, b),
            Backend::Generic => generic::and_assign(a, b),
            #[cfg(target_arch = "x86_64")]
            // `checked()` only yields Avx2 when detection passed, which is
            // what the safe avx2 entry points debug-assert.
            Backend::Avx2 => avx2::and_assign(a, b),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => unreachable!("unavailable backends are demoted by checked()"),
        }
    }

    /// `out = a | b`. All three slices must be equal length.
    pub fn or_into(self, a: &[u64], b: &[u64], out: &mut [u64]) {
        debug_assert!(a.len() == b.len() && b.len() == out.len());
        match self.checked() {
            Backend::Off => scalar::or_into(a, b, out),
            Backend::Generic => generic::or_into(a, b, out),
            #[cfg(target_arch = "x86_64")]
            // `checked()` only yields Avx2 when detection passed, which is
            // what the safe avx2 entry points debug-assert.
            Backend::Avx2 => avx2::or_into(a, b, out),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => unreachable!("unavailable backends are demoted by checked()"),
        }
    }

    /// `out = a & !b`. All three slices must be equal length.
    pub fn and_not_into(self, a: &[u64], b: &[u64], out: &mut [u64]) {
        debug_assert!(a.len() == b.len() && b.len() == out.len());
        match self.checked() {
            Backend::Off => scalar::and_not_into(a, b, out),
            Backend::Generic => generic::and_not_into(a, b, out),
            #[cfg(target_arch = "x86_64")]
            // `checked()` only yields Avx2 when detection passed, which is
            // what the safe avx2 entry points debug-assert.
            Backend::Avx2 => avx2::and_not_into(a, b, out),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => unreachable!("unavailable backends are demoted by checked()"),
        }
    }

    /// Batch: `x ⊆ r` for some row `r` of `rows`, a row-major packed
    /// buffer of width `x.len()` words per row (`rows.len()` must be a
    /// multiple of it). One backend selection for the whole sweep. A
    /// zero-width `x` encodes no rows, so the answer is `false`.
    pub fn subset_any(self, x: &[u64], rows: &[u64]) -> bool {
        debug_assert!(x.is_empty() || rows.len().is_multiple_of(x.len()));
        match self.checked() {
            Backend::Off => scalar::subset_any(x, rows),
            Backend::Generic => generic::subset_any(x, rows),
            #[cfg(target_arch = "x86_64")]
            // `checked()` only yields Avx2 when detection passed, which is
            // what the safe avx2 entry points debug-assert.
            Backend::Avx2 => avx2::subset_any(x, rows),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => unreachable!("unavailable backends are demoted by checked()"),
        }
    }

    /// Batch: for each row of `rows`, whether it is `⊆` some row of
    /// `negs`. Both buffers are row-major, `width` words per row; `out`
    /// is overwritten with one flag per row of `rows`. One backend
    /// selection for the whole sweep — the shape of the candidate
    /// index's antichain subsumption sweep.
    pub fn subsumed_mask(self, rows: &[u64], negs: &[u64], width: usize, out: &mut Vec<bool>) {
        debug_assert!(
            width == 0 || (rows.len().is_multiple_of(width) && negs.len().is_multiple_of(width))
        );
        match self.checked() {
            Backend::Off => scalar::subsumed_mask(rows, negs, width, out),
            Backend::Generic => generic::subsumed_mask(rows, negs, width, out),
            #[cfg(target_arch = "x86_64")]
            // `checked()` only yields Avx2 when detection passed, which is
            // what the safe avx2 entry points debug-assert.
            Backend::Avx2 => avx2::subsumed_mask(rows, negs, width, out),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => unreachable!("unavailable backends are demoted by checked()"),
        }
    }

    /// Demote an unavailable backend to the best available one, so the
    /// AVX2 entry points (whose kernels assume the features exist) are
    /// reachable only behind a passed feature check even if a caller
    /// conjures `Backend::Avx2` on the wrong CPU.
    #[inline]
    fn checked(self) -> Backend {
        if self == Backend::Avx2 && !self.available() {
            return Backend::Generic;
        }
        self
    }

    fn code(self) -> u8 {
        match self {
            Backend::Off => 1,
            Backend::Generic => 2,
            Backend::Avx2 => 3,
        }
    }

    fn from_code(code: u8) -> Option<Backend> {
        match code {
            1 => Some(Backend::Off),
            2 => Some(Backend::Generic),
            3 => Some(Backend::Avx2),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The resolved backend: 0 = not yet resolved, else `Backend::code`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The backend every dispatching kernel uses. Resolved on first call —
/// [`force`] override, then `JIM_SIMD=off|generic|avx2`, then the best
/// the CPU supports — and cached for the life of the process.
pub fn active() -> Backend {
    match Backend::from_code(ACTIVE.load(Ordering::Relaxed)) {
        Some(b) => b,
        None => {
            let b = resolve();
            ACTIVE.store(b.code(), Ordering::Relaxed);
            b
        }
    }
}

/// The active backend's name — what `jim-serve` logs at startup and the
/// `Metrics` wire op reports.
pub fn active_name() -> &'static str {
    active().name()
}

/// Force the dispatch to a specific backend (`Some`) or back to fresh
/// env/CPU resolution (`None`). Panics if the requested backend is not
/// available on this CPU — forcing must never make the AVX2 kernels
/// reachable without their feature check.
pub fn force(backend: Option<Backend>) {
    match backend {
        Some(b) => {
            assert!(
                b.available(),
                "jim-simd: backend {b} is not available on this CPU"
            );
            ACTIVE.store(b.code(), Ordering::Relaxed);
        }
        None => ACTIVE.store(0, Ordering::Relaxed),
    }
}

/// Env + CPU resolution (no caching; [`active`] caches).
fn resolve() -> Backend {
    if let Ok(v) = std::env::var("JIM_SIMD") {
        match Backend::parse(&v) {
            Some(b) if b.available() => return b,
            Some(b) => eprintln!(
                "jim-simd: JIM_SIMD={} requested but not available on this CPU; \
                 falling back to auto-detection",
                b.name()
            ),
            None => eprintln!(
                "jim-simd: unrecognized JIM_SIMD={v:?} (expected off|generic|avx2); \
                 falling back to auto-detection"
            ),
        }
    }
    if Backend::Avx2.available() {
        Backend::Avx2
    } else {
        Backend::Generic
    }
}

/// Number of set bits across the slice, on the [`active`] backend.
pub fn popcount(a: &[u64]) -> u64 {
    active().popcount(a)
}

/// `a ⊆ b` word-wise, on the [`active`] backend.
pub fn subset(a: &[u64], b: &[u64]) -> bool {
    active().subset(a, b)
}

/// True iff the slices share a set bit, on the [`active`] backend.
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    active().intersects(a, b)
}

/// `|a ∩ b|`, on the [`active`] backend.
pub fn intersection_count(a: &[u64], b: &[u64]) -> u64 {
    active().intersection_count(a, b)
}

/// `out = a & b`, on the [`active`] backend.
pub fn and_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    active().and_into(a, b, out)
}

/// `a &= b` in place, on the [`active`] backend.
pub fn and_assign(a: &mut [u64], b: &[u64]) {
    active().and_assign(a, b)
}

/// `out = a | b`, on the [`active`] backend.
pub fn or_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    active().or_into(a, b, out)
}

/// `out = a & !b`, on the [`active`] backend.
pub fn and_not_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    active().and_not_into(a, b, out)
}

/// Batch subset-of-any sweep (see [`Backend::subset_any`]), one dispatch.
pub fn subset_any(x: &[u64], rows: &[u64]) -> bool {
    active().subset_any(x, rows)
}

/// Batch subsumption sweep (see [`Backend::subsumed_mask`]), one dispatch.
pub fn subsumed_mask(rows: &[u64], negs: &[u64], width: usize, out: &mut Vec<bool>) {
    active().subsumed_mask(rows, negs, width, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_parse_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("AVX2"), Some(Backend::Avx2));
        assert_eq!(Backend::parse("scalar"), Some(Backend::Off));
        assert_eq!(Backend::parse("neon"), None);
        assert_eq!(Backend::Avx2.to_string(), "avx2");
    }

    #[test]
    fn off_and_generic_always_available() {
        assert!(Backend::Off.available());
        assert!(Backend::Generic.available());
    }

    #[test]
    fn code_round_trips() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_code(b.code()), Some(b));
        }
        assert_eq!(Backend::from_code(0), None);
    }

    /// One test exercises the force/active pair end to end (a single fn
    /// so parallel tests never race on the global dispatch state; the
    /// kernel-correctness tests use per-backend methods instead).
    #[test]
    fn force_controls_dispatch() {
        force(Some(Backend::Off));
        assert_eq!(active(), Backend::Off);
        assert_eq!(active_name(), "off");
        assert_eq!(popcount(&[0b1011, u64::MAX]), 3 + 64);
        force(Some(Backend::Generic));
        assert_eq!(active(), Backend::Generic);
        assert!(subset(&[0b0011], &[0b0111]));
        assert!(!subset(&[0b1000], &[0b0111]));
        force(None);
        // Re-resolution lands on something runnable.
        assert!(active().available());
        force(None);
    }

    #[test]
    fn zero_width_batch_semantics() {
        for b in Backend::ALL.into_iter().filter(|b| b.available()) {
            assert!(!b.subset_any(&[], &[]));
            let mut out = vec![true; 3];
            b.subsumed_mask(&[], &[], 0, &mut out);
            assert!(out.is_empty(), "{b}: width-0 mask must clear out");
        }
    }

    #[test]
    fn empty_set_is_subset_of_any_row() {
        // Zero *words* is degenerate, but an all-zero row of real width
        // is the empty set and must be ⊆ everything.
        for b in Backend::ALL.into_iter().filter(|b| b.available()) {
            assert!(b.subset_any(&[0, 0], &[0, 0]), "{b}");
            assert!(b.subset_any(&[0, 0], &[1 << 63, 0]), "{b}");
            assert!(!b.subset_any(&[1, 0], &[]), "{b}: no rows");
        }
    }
}
