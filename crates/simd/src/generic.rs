//! The portable fallback backend: `u64`-chunked loops, hand-unrolled four
//! words wide so LLVM can keep four accumulators live (and, on targets
//! with 128-bit vectors, autovectorize the bitwise half) without any
//! architecture-specific code. This is what non-x86_64 hosts — and
//! `JIM_SIMD=generic` — run.

const LANES: usize = 4;

/// Number of set bits across the slice.
pub fn popcount(a: &[u64]) -> u64 {
    let mut chunks = a.chunks_exact(LANES);
    let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
    for c in chunks.by_ref() {
        c0 += c[0].count_ones() as u64;
        c1 += c[1].count_ones() as u64;
        c2 += c[2].count_ones() as u64;
        c3 += c[3].count_ones() as u64;
    }
    let tail: u64 = chunks
        .remainder()
        .iter()
        .map(|&w| w.count_ones() as u64)
        .sum();
    c0 + c1 + c2 + c3 + tail
}

/// `a ⊆ b`. Accumulates the stray bits of four words at a time and tests
/// once per chunk, trading the per-word branch for one OR tree.
pub fn subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        let stray = (ca[0] & !cb[0]) | (ca[1] & !cb[1]) | (ca[2] & !cb[2]) | (ca[3] & !cb[3]);
        if stray != 0 {
            return false;
        }
    }
    ac.remainder()
        .iter()
        .zip(bc.remainder().iter())
        .all(|(&x, &y)| x & !y == 0)
}

/// True iff the slices share at least one set bit.
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        if (ca[0] & cb[0]) | (ca[1] & cb[1]) | (ca[2] & cb[2]) | (ca[3] & cb[3]) != 0 {
            return true;
        }
    }
    ac.remainder()
        .iter()
        .zip(bc.remainder().iter())
        .any(|(&x, &y)| x & y != 0)
}

/// `|a ∩ b|`.
pub fn intersection_count(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        c0 += (ca[0] & cb[0]).count_ones() as u64;
        c1 += (ca[1] & cb[1]).count_ones() as u64;
        c2 += (ca[2] & cb[2]).count_ones() as u64;
        c3 += (ca[3] & cb[3]).count_ones() as u64;
    }
    let tail: u64 = ac
        .remainder()
        .iter()
        .zip(bc.remainder().iter())
        .map(|(&x, &y)| (x & y).count_ones() as u64)
        .sum();
    c0 + c1 + c2 + c3 + tail
}

/// `out = a & b`. Simple element-wise form — LLVM vectorizes it at the
/// target's natural width with no help needed.
pub fn and_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x & y;
    }
}

/// `a &= b` in place.
pub fn and_assign(a: &mut [u64], b: &[u64]) {
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x &= y;
    }
}

/// `out = a | b`.
pub fn or_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x | y;
    }
}

/// `out = a & !b`.
pub fn and_not_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x & !y;
    }
}

/// `x ⊆ r` for some row `r` of `rows` (row-major, width = `x.len()`).
/// A zero-width `x` encodes no rows at all, so the answer is `false`.
pub fn subset_any(x: &[u64], rows: &[u64]) -> bool {
    let w = x.len();
    if w == 0 {
        return false;
    }
    // Index arithmetic, not per-row `chunks_exact`: re-deriving the chunk
    // count costs a 64-bit division per call, which dwarfs the subset
    // test itself at antichain widths.
    let n = rows.len() / w;
    (0..n).any(|j| subset(x, &rows[j * w..j * w + w]))
}

/// For each row of `rows`, whether it is `⊆` some row of `negs`; both are
/// row-major with the given `width`. `out` is overwritten.
pub fn subsumed_mask(rows: &[u64], negs: &[u64], width: usize, out: &mut Vec<bool>) {
    out.clear();
    if width == 0 {
        return;
    }
    // Hoist the row counts: one division each, not one per row.
    let nnegs = negs.len() / width;
    if nnegs == 1 {
        // The common sweep — one fresh negative per label batch. Slicing
        // it once lets the row loop run without per-row index math.
        let neg = &negs[..width];
        out.extend(rows.chunks_exact(width).map(|row| subset(row, neg)));
        return;
    }
    out.extend(
        rows.chunks_exact(width)
            .map(|row| (0..nnegs).any(|j| subset(row, &negs[j * width..j * width + width]))),
    );
}
