//! Experiment E1: the paper's §2 walkthrough, line by line.
//!
//! Every factual claim the paper makes about the Figure 1 instance is
//! asserted here. If these pass, the formal model matches the paper.

use jim::core::{Engine, EngineOptions, Label, TupleClass};
use jim::relation::{Product, ProductId};
use jim::synth::flights::{self, paper_tuple};

fn engine(f: &jim::relation::Relation, h: &jim::relation::Relation) -> Engine {
    let p = Product::new(vec![f, h]).unwrap();
    Engine::new(p, &EngineOptions::default()).unwrap()
}

#[test]
fn claim_q1_and_q2_both_consistent_with_tuple3_positive() {
    // "Observe that both queries Q1 and Q2 are consistent with this
    // labeling i.e., both queries select the tuple (3)."
    let (f, h) = (flights::flights(), flights::hotels());
    let mut e = engine(&f, &h);
    e.label(paper_tuple(3), Label::Positive).unwrap();
    assert!(e.consistent_with(&flights::q1(e.universe())));
    assert!(e.consistent_with(&flights::q2(e.universe())));
}

#[test]
fn claim_tuple4_uninformative_after_tuple3_positive() {
    // "if the user labels next the tuple (4) with +, both queries remain
    // consistent … the labeling of the tuple (4) does not contribute any
    // new information".
    let (f, h) = (flights::flights(), flights::hotels());
    let mut e = engine(&f, &h);
    e.label(paper_tuple(3), Label::Positive).unwrap();
    assert_eq!(
        e.classify(paper_tuple(4)).unwrap(),
        TupleClass::CertainPositive
    );
    assert!(!e.is_informative(paper_tuple(4)).unwrap());
}

#[test]
fn claim_tuple8_distinguishes_q1_from_q2() {
    // "a tuple whose labeling can distinguish between Q1 and Q2 is, for
    // instance, the tuple (8) because Q1 selects it and Q2 does not."
    let (f, h) = (flights::flights(), flights::hotels());
    let e = engine(&f, &h);
    let t8 = e.product().tuple(paper_tuple(8)).unwrap();
    assert!(flights::q1(e.universe()).selects(&t8));
    assert!(!flights::q2(e.universe()).selects(&t8));
}

#[test]
fn claim_tuple8_negative_returns_q2_positive_returns_q1_like() {
    // "If the user labels the tuple (8) with −, then the query Q2 is
    // returned; otherwise Q1 is returned." (In context: after (3)+.)
    let (f, h) = (flights::flights(), flights::hotels());

    let mut e_neg = engine(&f, &h);
    e_neg.label(paper_tuple(3), Label::Positive).unwrap();
    e_neg.label(paper_tuple(8), Label::Negative).unwrap();
    // Q2 must still be consistent and Q1 eliminated.
    assert!(e_neg.consistent_with(&flights::q2(e_neg.universe())));
    assert!(!e_neg.consistent_with(&flights::q1(e_neg.universe())));

    let mut e_pos = engine(&f, &h);
    e_pos.label(paper_tuple(3), Label::Positive).unwrap();
    e_pos.label(paper_tuple(8), Label::Positive).unwrap();
    // Both remain consistent predicates-wise? No: a positive (8) forces
    // U = Θ(3) ∩ Θ(8) = {TC}, i.e. exactly Q1.
    assert!(e_pos.consistent_with(&flights::q1(e_pos.universe())));
    assert!(!e_pos.consistent_with(&flights::q2(e_pos.universe())));
}

#[test]
fn claim_q2_contained_in_q1_needs_negatives() {
    // "query Q2 is contained in Q1, and therefore, Q1 satisfies all
    // positive examples that Q2 does. Consequently, the use of negative
    // examples … is necessary to distinguish between these two."
    let (f, h) = (flights::flights(), flights::hotels());
    let e = engine(&f, &h);
    let q1 = flights::q1(e.universe());
    let q2 = flights::q2(e.universe());
    assert!(q2.contained_in(&q1));

    // Label every tuple Q2 selects as positive: Q1 remains consistent, so
    // positives alone cannot identify Q2.
    let mut e2 = engine(&f, &h);
    for id in q2.eval(e2.product()).unwrap() {
        e2.label(id, Label::Positive).unwrap();
    }
    assert!(e2.consistent_with(&q1));
    assert!(e2.consistent_with(&q2));
    assert!(!e2.is_resolved());
}

#[test]
fn claim_labels_3_7_8_leave_unique_predicate_q2() {
    // "for the tuples in Figure 1, assuming that (3) is a positive example,
    // and (7) and (8) are negative examples, there is only one consistent
    // join predicate (i.e., the above Q2)."
    let (f, h) = (flights::flights(), flights::hotels());
    let mut e = engine(&f, &h);
    for (id, label) in flights::walkthrough_labels() {
        e.label(id, label).unwrap();
    }
    assert!(e.is_resolved());
    assert_eq!(e.result(), flights::q2(e.universe()));
    // And the consistent class is literally a singleton.
    let class = jim::core::equivalence::consistent_class(&e, 1 << 10).unwrap();
    assert_eq!(class.len(), 1);
    assert_eq!(class[0], flights::q2(e.universe()));
}

#[test]
fn claim_label_12_positive_prunes_3_4_7() {
    // "assume that Jim asked the user to label the tuple (12). If the user
    // labels it as a positive example, we are able to prune the tuples that
    // become uninformative: (3), (4), (7)."
    let (f, h) = (flights::flights(), flights::hotels());
    let mut e = engine(&f, &h);
    e.label(paper_tuple(12), Label::Positive).unwrap();
    let mut pruned: Vec<u64> = (1..=12)
        .filter(|&k| k != 12)
        .filter(|&k| e.classify(paper_tuple(k)).unwrap().is_certain())
        .collect();
    pruned.sort_unstable();
    assert_eq!(pruned, vec![3, 4, 7]);
}

#[test]
fn claim_label_12_negative_prunes_1_5_9() {
    // "Conversely, if the user labels tuple (12) as a negative example, we
    // are able to prune the uninformative tuples: (1), (5), (9)."
    let (f, h) = (flights::flights(), flights::hotels());
    let mut e = engine(&f, &h);
    e.label(paper_tuple(12), Label::Negative).unwrap();
    let mut pruned: Vec<u64> = (1..=12)
        .filter(|&k| k != 12)
        .filter(|&k| e.classify(paper_tuple(k)).unwrap().is_certain())
        .collect();
    pruned.sort_unstable();
    assert_eq!(pruned, vec![1, 5, 9]);
}

#[test]
fn figure1_product_matches_paper_rows() {
    // The twelve rows of Figure 1, in order.
    let expected = [
        ("Paris", "Lille", "AF", "NYC", "AA"),
        ("Paris", "Lille", "AF", "Paris", ""),
        ("Paris", "Lille", "AF", "Lille", "AF"),
        ("Lille", "NYC", "AA", "NYC", "AA"),
        ("Lille", "NYC", "AA", "Paris", ""),
        ("Lille", "NYC", "AA", "Lille", "AF"),
        ("NYC", "Paris", "AA", "NYC", "AA"),
        ("NYC", "Paris", "AA", "Paris", ""),
        ("NYC", "Paris", "AA", "Lille", "AF"),
        ("Paris", "NYC", "AF", "NYC", "AA"),
        ("Paris", "NYC", "AF", "Paris", ""),
        ("Paris", "NYC", "AF", "Lille", "AF"),
    ];
    let f = flights::flights();
    let h = flights::hotels();
    let p = Product::new(vec![&f, &h]).unwrap();
    assert_eq!(p.size(), 12);
    for (i, row) in expected.iter().enumerate() {
        let t = p.tuple(ProductId(i as u64)).unwrap();
        let rendered: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
        assert_eq!(
            rendered,
            vec![row.0, row.1, row.2, row.3, row.4],
            "paper tuple ({})",
            i + 1
        );
    }
}
