//! End-to-end integration: every strategy × every workload, run to
//! convergence against a goal oracle, with the three core guarantees
//! checked at every step:
//!
//! * **soundness** — the goal stays consistent under truthful answers;
//! * **termination** — the session resolves within the informative budget;
//! * **correctness** — the inferred predicate is instance-equivalent to
//!   the goal.

use jim::core::session::run_most_informative;
use jim::core::strategy::StrategyKind;
use jim::core::{Engine, EngineOptions, GoalOracle, JoinPredicate};
use jim::relation::{Database, Product};
use jim::synth::{flights, goals, random_db, setgame, tpch};

/// Drive a fresh engine to convergence; assert the guarantees; return the
/// number of interactions.
fn converge(engine: Engine, goal: &JoinPredicate, kind: StrategyKind) -> u64 {
    let total = engine.stats().total_tuples;
    let mut strategy = kind.build();
    let mut oracle = GoalOracle::new(goal.clone());
    let out = run_most_informative(engine, strategy.as_mut(), &mut oracle)
        .unwrap_or_else(|e| panic!("{kind} on {goal}: {e}"));
    assert!(out.resolved, "{kind} did not resolve {goal}");
    assert!(
        out.interactions <= total,
        "{kind} used more interactions than tuples"
    );
    assert!(
        out.inferred
            .instance_equivalent(goal, out.engine.product())
            .unwrap(),
        "{kind}: inferred {} but goal was {goal}",
        out.inferred
    );
    out.interactions
}

fn strategies() -> Vec<StrategyKind> {
    StrategyKind::heuristics(1234)
}

#[test]
fn all_strategies_on_flights_hotels_q1_q2() {
    let f = flights::flights();
    let h = flights::hotels();
    for kind in strategies().into_iter().chain([StrategyKind::Optimal]) {
        for goal_id in 0..2 {
            let p = Product::new(vec![&f, &h]).unwrap();
            let e = Engine::new(p, &EngineOptions::default()).unwrap();
            let goal = if goal_id == 0 {
                flights::q1(e.universe())
            } else {
                flights::q2(e.universe())
            };
            let n = converge(e, &goal, kind);
            assert!(n <= 12, "{kind} on goal {goal_id}: {n} interactions");
        }
    }
}

#[test]
fn all_strategies_on_set_cards() {
    let deck = setgame::subdeck(15, 99);
    let deck2 = setgame::subdeck(15, 99);
    for kind in strategies() {
        let p = Product::new(vec![&deck, &deck2]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let goal = setgame::same_features_goal(e.universe(), &["color", "shading"]);
        converge(e, &goal, kind);
    }
}

#[test]
fn all_strategies_on_tpch_customer_orders() {
    let db = tpch::generate(tpch::TpchConfig::default());
    for kind in strategies() {
        let (rels, _) = db.join_view(&["customer", "orders"]).unwrap();
        let p = Product::new(rels).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let u = e.universe().clone();
        let fk = u.id_by_names((0, "c_custkey"), (1, "o_custkey")).unwrap();
        let goal = JoinPredicate::of(u, [fk]);
        converge(e, &goal, kind);
    }
}

#[test]
fn three_way_join_inference() {
    // n-ary (n = 3): nation ⋈ region plus customer ⋈ nation, inferred in
    // one session over the triple product.
    let db = tpch::generate(tpch::TpchConfig {
        scale: 0.5,
        seed: 3,
    });
    for kind in [StrategyKind::LookaheadMinPrune, StrategyKind::LocalGeneral] {
        let (rels, _) = db.join_view(&["region", "nation", "customer"]).unwrap();
        let p = Product::new(rels).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let u = e.universe().clone();
        let nr = u
            .id_by_names((0, "r_regionkey"), (1, "n_regionkey"))
            .unwrap();
        let cn = u
            .id_by_names((1, "n_nationkey"), (2, "c_nationkey"))
            .unwrap();
        let goal = JoinPredicate::of(u, [nr, cn]);
        converge(e, &goal, kind);
    }
}

#[test]
fn random_instances_with_generated_goals() {
    for seed in 0..4u64 {
        let db = random_db::generate(&random_db::RandomDbConfig::uniform(2, 3, 12, 4, seed));
        let (rels, _) = db.join_view(&["r1", "r2"]).unwrap();
        let p = Product::new(rels).unwrap();
        for arity in 1..=2usize {
            let Some(goal) = goals::satisfiable_goal(&p, arity, seed) else {
                continue;
            };
            for kind in [
                StrategyKind::LookaheadMinPrune,
                StrategyKind::LocalGeneral,
                StrategyKind::Random { seed },
            ] {
                let e = Engine::new(p.clone(), &EngineOptions::default()).unwrap();
                converge(e, &goal, kind);
            }
        }
    }
}

#[test]
fn inferred_sql_is_executable_and_matches() {
    // The SQL rendering names real relations/attributes; executing the
    // inferred predicate on the product returns exactly the entailed
    // positives.
    let f = flights::flights();
    let h = flights::hotels();
    let p = Product::new(vec![&f, &h]).unwrap();
    let e = Engine::new(p, &EngineOptions::default()).unwrap();
    let goal = flights::q2(e.universe());
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let mut oracle = GoalOracle::new(goal.clone());
    let out = run_most_informative(e, strategy.as_mut(), &mut oracle).unwrap();

    let selected = out.inferred.eval(out.engine.product()).unwrap();
    assert_eq!(selected, out.engine.entailed_positive_ids());
    let sql = out.inferred.to_sql();
    assert!(sql.contains("WHERE"));
    assert!(sql.contains("r1.To = r2.City"));
}

#[test]
fn database_round_trip_through_csv() {
    // Export the paper's database to CSV, re-import, infer again: identical
    // behaviour (CSV is how real users would load their raw data).
    use jim::relation::csv;
    let db = flights::database();
    let re_flights =
        csv::read_relation("flights", &csv::write_relation(db.get("flights").unwrap())).unwrap();
    let re_hotels =
        csv::read_relation("hotels", &csv::write_relation(db.get("hotels").unwrap())).unwrap();
    let db2 = Database::from_relations(vec![re_flights, re_hotels]).unwrap();

    let (rels, _) = db2.join_view(&["flights", "hotels"]).unwrap();
    let p = Product::new(rels).unwrap();
    let e = Engine::new(p, &EngineOptions::default()).unwrap();
    let goal = flights::q2(e.universe());
    let n = converge(e, &goal, StrategyKind::LookaheadMinPrune);
    assert!(n <= 6);
}

#[test]
fn intra_relation_scope_extension() {
    // AllPairs scope also admits selection-like atoms inside one relation.
    use jim::core::AtomScope;
    let f = flights::flights();
    let h = flights::hotels();
    let p = Product::new(vec![&f, &h]).unwrap();
    let opts = EngineOptions {
        scope: AtomScope::AllPairs,
        ..Default::default()
    };
    let e = Engine::new(p, &opts).unwrap();
    assert_eq!(e.universe().len(), 10); // C(5,2) pairs, all text
    let goal = flights::q1(e.universe());
    converge(e, &goal, StrategyKind::LookaheadMinPrune);
}

#[test]
fn sampled_engine_still_converges() {
    // A product too large to label exhaustively: sample it, infer on the
    // sample. The inferred query is consistent with every sampled answer.
    use rand::SeedableRng;
    let db = tpch::generate(tpch::TpchConfig {
        scale: 2.0,
        seed: 8,
    });
    let (rels, _) = db.join_view(&["orders", "lineitem"]).unwrap();
    let p = Product::new(rels).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let ids = p.sample(&mut rng, 2_000);
    let e = Engine::from_ids(p.clone(), &ids, &EngineOptions::default()).unwrap();
    assert_eq!(e.stats().total_tuples, 2_000);
    let u = e.universe().clone();
    let fk = u.id_by_names((0, "o_orderkey"), (1, "l_orderkey")).unwrap();
    let goal = JoinPredicate::of(u, [fk]);
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let mut oracle = GoalOracle::new(goal.clone());
    let out = run_most_informative(e, strategy.as_mut(), &mut oracle).unwrap();
    assert!(out.resolved);
    assert!(out.engine.consistent_with(&goal));
}

#[test]
fn lookahead_beats_random_on_average() {
    // The paper's core pitch: an intelligent strategy needs fewer
    // interactions than random labeling. Averaged over seeds and goals on
    // the TPC-H customer×orders instance.
    let db = tpch::generate(tpch::TpchConfig::default());
    let (rels, _) = db.join_view(&["customer", "orders"]).unwrap();
    let p = Product::new(rels).unwrap();
    let goal_list = goals::satisfiable_goals(&p, 1, 3, 17);
    assert!(!goal_list.is_empty());

    let mut random_total = 0u64;
    let mut lookahead_total = 0u64;
    for goal in &goal_list {
        for seed in 0..3u64 {
            let e = Engine::new(p.clone(), &EngineOptions::default()).unwrap();
            random_total += converge(e, goal, StrategyKind::Random { seed });
        }
        let e = Engine::new(p.clone(), &EngineOptions::default()).unwrap();
        lookahead_total += 3 * converge(e, goal, StrategyKind::LookaheadMinPrune);
    }
    assert!(
        lookahead_total <= random_total,
        "lookahead {lookahead_total} vs random {random_total}"
    );
}
