//! Property-based tests (proptest) for the core invariants listed in
//! DESIGN.md §8:
//!
//! * bitset algebra laws,
//! * hash join ≡ nested-loop join,
//! * CSV round-trips,
//! * signature monotonicity under `U`-restriction,
//! * soundness / termination / correctness of inference on random
//!   instances with random goals,
//! * version-space counting consistency (inclusion–exclusion vs brute
//!   force).

use jim::core::session::run_most_informative;
use jim::core::strategy::StrategyKind;
use jim::core::{AtomSet, Engine, EngineOptions, GoalOracle, JoinPredicate, VersionSpace};
use jim::relation::{csv, DataType, JoinSpec, Product, Relation, RelationSchema, Tuple, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------- fixtures

/// A random relation: `rows × arity` small-domain integers.
fn arb_relation(
    name: &'static str,
    arity: std::ops::RangeInclusive<usize>,
    rows: std::ops::RangeInclusive<usize>,
    domain: i64,
) -> impl Strategy<Value = Relation> {
    (arity, rows).prop_flat_map(move |(a, r)| {
        proptest::collection::vec(proptest::collection::vec(0..domain, a), r).prop_map(
            move |data| {
                let attrs: Vec<(String, DataType)> = (0..a)
                    .map(|i| (format!("{name}_c{i}"), DataType::Int))
                    .collect();
                let refs: Vec<(&str, DataType)> =
                    attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
                let schema = RelationSchema::of(name, &refs).unwrap();
                let rows = data
                    .into_iter()
                    .map(|vals| Tuple::new(vals.into_iter().map(Value::Int).collect()))
                    .collect();
                Relation::new(schema, rows).unwrap()
            },
        )
    })
}

fn arb_bitset(bits: usize) -> impl Strategy<Value = AtomSet> {
    proptest::collection::vec(any::<bool>(), bits).prop_map(move |mask| {
        AtomSet::from_indices(
            bits,
            mask.iter().enumerate().filter(|(_, b)| **b).map(|(i, _)| i),
        )
    })
}

// ------------------------------------------------------------ bitset laws

proptest! {
    #[test]
    fn bitset_intersection_is_lower_bound(a in arb_bitset(70), b in arb_bitset(70)) {
        let i = a.intersection(&b);
        prop_assert!(i.is_subset(&a));
        prop_assert!(i.is_subset(&b));
        prop_assert_eq!(i.len(), a.intersection_len(&b));
    }

    #[test]
    fn bitset_union_is_upper_bound(a in arb_bitset(70), b in arb_bitset(70)) {
        let u = a.union(&b);
        prop_assert!(a.is_subset(&u));
        prop_assert!(b.is_subset(&u));
        // |A ∪ B| = |A| + |B| − |A ∩ B|
        prop_assert_eq!(u.len() + a.intersection_len(&b), a.len() + b.len());
    }

    #[test]
    fn bitset_difference_partitions(a in arb_bitset(70), b in arb_bitset(70)) {
        let d = a.difference(&b);
        prop_assert!(d.is_subset(&a));
        prop_assert!(!d.intersects(&b) || d.intersection_len(&b) == 0);
        prop_assert_eq!(d.len() + a.intersection_len(&b), a.len());
    }

    #[test]
    fn bitset_subset_antisymmetry(a in arb_bitset(40), b in arb_bitset(40)) {
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn bitset_iter_round_trip(a in arb_bitset(129)) {
        let rebuilt = AtomSet::from_indices(129, a.iter());
        prop_assert_eq!(a, rebuilt);
    }
}

// --------------------------------------------------------- join evaluators

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_join_equals_nested_loop(
        r1 in arb_relation("p", 1..=3, 0..=6, 3),
        r2 in arb_relation("q", 1..=3, 0..=6, 3),
        pair_mask in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let p = Product::new(vec![&r1, &r2]).unwrap();
        let schema = p.schema();
        // Build a join spec from the mask over candidate cross pairs.
        let mut pairs = Vec::new();
        let a1 = r1.schema().arity();
        let mut k = 0;
        for i in 0..a1 {
            for j in 0..r2.schema().arity() {
                if *pair_mask.get(k).unwrap_or(&false) {
                    pairs.push((
                        schema.global(0, i).unwrap(),
                        schema.global(1, j).unwrap(),
                    ));
                }
                k += 1;
            }
        }
        let spec = JoinSpec::new(pairs);
        let reference = spec.eval_nested_loop(&p).unwrap();
        prop_assert_eq!(spec.eval_hash(&p).unwrap(), reference.clone());
        // Sort-merge is the third independent evaluator (binary joins).
        prop_assert_eq!(spec.eval_sort_merge(&p).unwrap(), reference);
    }

    #[test]
    fn csv_round_trip(r in arb_relation("t", 1..=4, 0..=8, 100)) {
        let text = csv::write_relation(&r);
        let back = csv::read_relation("t", &text).unwrap();
        prop_assert_eq!(back.len(), r.len());
        // Int columns survive exactly (no value had text form).
        for (a, b) in r.rows().iter().zip(back.rows()) {
            prop_assert_eq!(a, b);
        }
    }
}

// ----------------------------------------------------- version-space laws

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inclusion–exclusion count == brute-force enumeration count.
    #[test]
    fn counting_matches_enumeration(
        upper_bits in 1usize..=8,
        negs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 8), 0..=4),
    ) {
        // Build a universe of 8 atoms via a 2-relation schema is overkill;
        // test VersionSpace math directly through a synthetic instance.
        let r1 = Relation::new(
            RelationSchema::of(
                "a",
                &[("x0", DataType::Int), ("x1", DataType::Int), ("x2", DataType::Int), ("x3", DataType::Int)],
            ).unwrap(),
            vec![Tuple::new(vec![Value::Int(0); 4])],
        ).unwrap();
        let r2 = r1.clone();
        let p = Product::new(vec![&r1, &r2]).unwrap();
        let e = Engine::new(p, &EngineOptions::default()).unwrap();
        let universe = e.universe().clone();
        let n = universe.len();
        prop_assume!(n >= 8);

        let mut vs = VersionSpace::new(universe);
        // Restrict upper by a synthetic positive.
        let upper = AtomSet::from_indices(n, 0..upper_bits.min(n));
        // Fill the rest so the positive's signature = upper ∪ nothing else.
        vs.add_positive(jim::relation::ProductId(0), &upper).unwrap();
        for neg in &negs {
            let sig = AtomSet::from_indices(
                n,
                neg.iter().enumerate().filter(|(_, b)| **b).map(|(i, _)| i),
            );
            // Skip inconsistent negatives (certain-positive signatures).
            let _ = vs.add_negative(jim::relation::ProductId(1), &sig);
        }
        let enumerated = vs.enumerate_consistent(1 << 12).unwrap().len() as u128;
        prop_assert_eq!(vs.count_consistent_exact(), Some(enumerated));
        if let Some(frac) = vs.consistent_fraction() {
            let expect = enumerated as f64 / (1u64 << vs.upper().len()) as f64;
            prop_assert!((frac - expect).abs() < 1e-9);
        }
    }

    /// Restriction is monotone: shrinking U never grows a restricted sig.
    #[test]
    fn restriction_monotone(
        sig in arb_bitset(16),
        u1 in arb_bitset(16),
        u2 in arb_bitset(16),
    ) {
        let tighter = u1.intersection(&u2);
        let r1 = sig.intersection(&u1);
        let r2 = sig.intersection(&tighter);
        prop_assert!(r2.is_subset(&r1));
    }
}

// ------------------------------------------------- candidate-index laws

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The incrementally maintained candidate index equals a from-scratch
    /// reclassification of all groups after **any** random label sequence
    /// (positives, negatives, wasted labels) and mid-session absorbs — the
    /// equivalence contract of the de-materialized hot path.
    #[test]
    fn incremental_index_matches_recompute(
        r1 in arb_relation("p", 2..=3, 2..=7, 3),
        r2 in arb_relation("q", 2..=3, 2..=7, 3),
        picks in proptest::collection::vec(any::<u64>(), 1..=12),
        start_fraction in 1u64..=4,
    ) {
        use jim::core::{Candidate, Label};
        fn sorted(mut v: Vec<Candidate>) -> Vec<Candidate> {
            v.sort_by(|a, b| {
                a.restricted_sig
                    .cmp(&b.restricted_sig)
                    .then(a.count.cmp(&b.count))
                    .then(a.representative.cmp(&b.representative))
            });
            v
        }
        let p = Product::new(vec![&r1, &r2]).unwrap();
        prop_assume!(!p.is_empty());

        // Start from a prefix sample so absorb_ids is on the tested path.
        let prefix = (p.size() / start_fraction).max(1);
        let ids: Vec<jim::relation::ProductId> =
            (0..prefix).map(jim::relation::ProductId).collect();
        let mut engine =
            Engine::from_ids(p.clone(), &ids, &EngineOptions::default()).unwrap();

        let mut absorbed = false;
        for (step, pick) in picks.iter().enumerate() {
            prop_assert_eq!(
                sorted(engine.candidates().candidates().to_vec()),
                sorted(engine.recompute_candidates()),
                "index diverged at step {}", step
            );
            prop_assert_eq!(
                engine.candidates().total_tuples(),
                engine.stats().informative
            );
            if engine.is_resolved() {
                break;
            }
            if !absorbed && step == picks.len() / 2 {
                // Widen the sample mid-session.
                let all: Vec<jim::relation::ProductId> =
                    (0..p.size()).map(jim::relation::ProductId).collect();
                engine.absorb_ids(&all).unwrap();
                absorbed = true;
                continue;
            }
            // Label a random informative representative. Both labels are
            // consistent for an informative tuple by definition.
            let cands = engine.candidates().candidates().to_vec();
            let c = &cands[(*pick as usize) % cands.len()];
            let label = if pick & 1 == 0 { Label::Positive } else { Label::Negative };
            engine.label(c.representative, label).unwrap();
        }
        prop_assert_eq!(
            sorted(engine.candidates().candidates().to_vec()),
            sorted(engine.recompute_candidates())
        );
    }

    /// Batch-vs-sequential equivalence: any sequentially-consistent label
    /// sequence, randomly split into batches, leaves the engine in the
    /// same state as one-at-a-time labeling — same inferred predicate,
    /// same candidate set (also pinned against `recompute_candidates`),
    /// same resolution state, same label/prune accounting. This is the
    /// contract that lets `run_top_k` and the wire's `AnswerBatch` share
    /// one propagation pass per batch.
    #[test]
    fn batch_labeling_equals_sequential(
        r1 in arb_relation("p", 2..=3, 2..=7, 3),
        r2 in arb_relation("q", 2..=3, 2..=7, 3),
        picks in proptest::collection::vec(any::<u64>(), 1..=14),
        chunk_sizes in proptest::collection::vec(1usize..=5, 1..=14),
    ) {
        use jim::core::{Candidate, Label};
        fn sorted(mut v: Vec<Candidate>) -> Vec<Candidate> {
            v.sort_by(|a, b| {
                a.restricted_sig
                    .cmp(&b.restricted_sig)
                    .then(a.count.cmp(&b.count))
                    .then(a.representative.cmp(&b.representative))
            });
            v
        }
        let p = Product::new(vec![&r1, &r2]).unwrap();
        prop_assume!(!p.is_empty());

        // Drive a sequential engine with random-but-consistent labels
        // (an informative tuple accepts either label), recording the
        // sequence.
        let mut sequential =
            Engine::new(p.clone(), &EngineOptions::default()).unwrap();
        let mut sequence: Vec<(jim::relation::ProductId, Label)> = Vec::new();
        for pick in &picks {
            let cands = sequential.candidates().candidates().to_vec();
            if cands.is_empty() {
                break;
            }
            let c = &cands[(*pick as usize) % cands.len()];
            let label = if pick & 1 == 0 { Label::Positive } else { Label::Negative };
            sequential.label(c.representative, label).unwrap();
            sequence.push((c.representative, label));
        }

        // Replay the same sequence through label_batch in random chunks.
        let mut batched = Engine::new(p, &EngineOptions::default()).unwrap();
        let mut rest = sequence.as_slice();
        let mut chunk_iter = chunk_sizes.iter().cycle();
        while !rest.is_empty() {
            let size = (*chunk_iter.next().unwrap()).min(rest.len());
            let (chunk, tail) = rest.split_at(size);
            let outcome = batched.label_batch(chunk).unwrap();
            prop_assert_eq!(outcome.applied, chunk.len() as u64);
            rest = tail;
        }

        prop_assert_eq!(batched.result(), sequential.result());
        prop_assert_eq!(batched.is_resolved(), sequential.is_resolved());
        prop_assert_eq!(
            sorted(batched.candidates().candidates().to_vec()),
            sorted(sequential.candidates().candidates().to_vec())
        );
        prop_assert_eq!(
            sorted(batched.candidates().candidates().to_vec()),
            sorted(batched.recompute_candidates())
        );
        prop_assert_eq!(batched.entailed_positive_ids(), sequential.entailed_positive_ids());
        let (bs, ss) = (batched.stats(), sequential.stats());
        prop_assert_eq!(bs.labeled_positive, ss.labeled_positive);
        prop_assert_eq!(bs.labeled_negative, ss.labeled_negative);
        prop_assert_eq!(bs.pruned, ss.pruned);
        prop_assert_eq!(bs.informative, ss.informative);
    }

    /// The generation counter strictly increases on every label and on
    /// every absorb that adds tuples — the invalidation signal owned
    /// caches (the server's question cache) rely on.
    #[test]
    fn generation_tracks_mutations(
        r1 in arb_relation("p", 2..=2, 2..=6, 3),
        r2 in arb_relation("q", 2..=2, 2..=6, 3),
        picks in proptest::collection::vec(any::<u64>(), 1..=8),
    ) {
        use jim::core::Label;
        let p = Product::new(vec![&r1, &r2]).unwrap();
        prop_assume!(!p.is_empty());
        let mut engine = Engine::new(p, &EngineOptions::default()).unwrap();
        let mut last = engine.generation();
        for pick in picks {
            let _ = engine.candidates();
            let _ = engine.recompute_candidates();
            prop_assert_eq!(engine.generation(), last, "queries must not bump");
            let cands = engine.candidates().candidates().to_vec();
            if cands.is_empty() {
                break;
            }
            let c = &cands[(pick as usize) % cands.len()];
            let label = if pick & 1 == 0 { Label::Positive } else { Label::Negative };
            engine.label(c.representative, label).unwrap();
            prop_assert!(engine.generation() > last, "labels must bump");
            last = engine.generation();
        }
    }
}

// -------------------------------------------- inference run-level invariants

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness + termination + correctness on random instances & goals,
    /// for a lookahead and a local strategy and the random baseline.
    #[test]
    fn inference_invariants(
        r1 in arb_relation("p", 2..=3, 2..=8, 3),
        r2 in arb_relation("q", 2..=3, 2..=8, 3),
        goal_pick in any::<u64>(),
        strat_pick in 0usize..3,
    ) {
        let p = Product::new(vec![&r1, &r2]).unwrap();
        prop_assume!(!p.is_empty());
        let engine = Engine::new(p.clone(), &EngineOptions::default()).unwrap();
        let universe = engine.universe().clone();

        // Goal: the signature of a random product tuple (always satisfiable),
        // possibly thinned to a sub-predicate.
        let witness = jim::relation::ProductId(goal_pick % p.size());
        let tuple = p.tuple(witness).unwrap();
        let full = universe.signature(&tuple);
        let kept: Vec<usize> = full
            .iter()
            .enumerate()
            .filter(|(i, _)| goal_pick >> (i % 60) & 1 == 1)
            .map(|(_, atom)| atom)
            .collect();
        let atoms = AtomSet::from_indices(universe.len(), kept);
        let goal = JoinPredicate::new(universe.clone(), atoms);

        let kind = [
            StrategyKind::LookaheadMinPrune,
            StrategyKind::LocalGeneral,
            StrategyKind::Random { seed: goal_pick },
        ][strat_pick];

        let total = engine.stats().total_tuples;
        let mut strategy = kind.build();
        let mut oracle = GoalOracle::new(goal.clone());
        let out = run_most_informative(engine, strategy.as_mut(), &mut oracle).unwrap();

        // Termination within the trivial budget.
        prop_assert!(out.resolved);
        prop_assert!(out.interactions <= total);
        // Soundness: goal never eliminated.
        prop_assert!(out.engine.consistent_with(&goal));
        // Correctness: instance-equivalent result.
        prop_assert!(out.inferred.instance_equivalent(&goal, out.engine.product()).unwrap());
        // The statistics add up.
        let s = out.engine.stats();
        prop_assert_eq!(
            s.labeled_positive + s.labeled_negative + s.pruned,
            s.total_tuples
        );
    }

    /// Every intermediate classification is honest: a certain-positive
    /// tuple is selected by the goal, a certain-negative one is not
    /// (given truthful answers so far).
    #[test]
    fn certainty_is_honest(
        r1 in arb_relation("p", 2..=2, 2..=6, 3),
        r2 in arb_relation("q", 2..=2, 2..=6, 3),
        goal_pick in any::<u64>(),
    ) {
        use jim::core::{Label, TupleClass};
        let p = Product::new(vec![&r1, &r2]).unwrap();
        prop_assume!(!p.is_empty());
        let mut engine = Engine::new(p.clone(), &EngineOptions::default()).unwrap();
        let universe = engine.universe().clone();
        let witness = jim::relation::ProductId(goal_pick % p.size());
        let goal = JoinPredicate::new(
            universe.clone(),
            universe.signature(&p.tuple(witness).unwrap()),
        );

        let mut strategy = StrategyKind::LookaheadMinPrune.build();
        loop {
            // Check every tuple's classification against the goal.
            for (id, tuple) in p.iter() {
                match engine.classify(id).unwrap() {
                    TupleClass::CertainPositive => prop_assert!(goal.selects(&tuple)),
                    TupleClass::CertainNegative => prop_assert!(!goal.selects(&tuple)),
                    TupleClass::Informative => {}
                }
            }
            let Some(next) = jim::core::strategy::choose_next(strategy.as_mut(), &engine) else { break };
            let t = p.tuple(next).unwrap();
            engine.label(next, Label::from_bool(goal.selects(&t))).unwrap();
        }
    }
}

// ------------------------------------------ durable-session resume fidelity

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Resume-vs-live equivalence: a random session over a journaled
    /// (`--data-dir`) server, evicted at a random batch boundary and
    /// transparently rehydrated by replay, ends bit-identical to the same
    /// session on a never-evicted in-memory server — same inferred
    /// predicate, same candidate set, same `ProgressStats` **including
    /// the interaction log** (the journal records applied batches, and
    /// resume replays them with one `label_batch` pass each, reproducing
    /// the exact state trajectory).
    #[test]
    fn evicted_and_resumed_session_equals_never_evicted(
        r1 in arb_relation("p", 2..=3, 2..=6, 3),
        r2 in arb_relation("q", 2..=3, 2..=6, 3),
        picks in proptest::collection::vec(any::<u64>(), 1..=12),
        chunk_sizes in proptest::collection::vec(1usize..=4, 1..=12),
        cut in any::<u64>(),
    ) {
        use jim::core::{Candidate, Label};
        use jim::relation::csv;
        use jim_json::Json;
        use jim_server::handler::Handler;
        use jim_server::journal::JournalStore;
        use jim_server::store::{SessionStore, StoreConfig};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        use std::time::{Duration, Instant};

        fn sorted(mut v: Vec<Candidate>) -> Vec<Candidate> {
            v.sort_by(|a, b| {
                a.restricted_sig
                    .cmp(&b.restricted_sig)
                    .then(a.count.cmp(&b.count))
                    .then(a.representative.cmp(&b.representative))
            });
            v
        }

        let p = Product::new(vec![&r1, &r2]).unwrap();
        prop_assume!(!p.is_empty());

        // Generate a sequentially-consistent label sequence on a scratch
        // engine (an informative tuple accepts either label), then chunk
        // it into the batches both servers will receive.
        let mut scratch = Engine::new(p, &EngineOptions::default()).unwrap();
        let mut sequence: Vec<(jim::relation::ProductId, Label)> = Vec::new();
        for pick in &picks {
            let cands = scratch.candidates().candidates().to_vec();
            if cands.is_empty() {
                break;
            }
            let c = &cands[(*pick as usize) % cands.len()];
            let label = if pick & 1 == 0 { Label::Positive } else { Label::Negative };
            scratch.label(c.representative, label).unwrap();
            sequence.push((c.representative, label));
        }
        let mut batches: Vec<&[(jim::relation::ProductId, Label)]> = Vec::new();
        let mut rest = sequence.as_slice();
        let mut chunk_iter = chunk_sizes.iter().cycle();
        while !rest.is_empty() {
            let size = (*chunk_iter.next().unwrap()).min(rest.len());
            let (chunk, tail) = rest.split_at(size);
            batches.push(chunk);
            rest = tail;
        }

        // Two servers: one journaled (evicted mid-way), one plain.
        static CASE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "jim-proptest-resume-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let ttl = Duration::from_secs(60);
        let durable = Handler::new(Arc::new(SessionStore::with_journal(
            StoreConfig { max_sessions: 8, ttl, ..Default::default() },
            JournalStore::open(&dir).unwrap(),
        )));
        let live = Handler::new(Arc::new(SessionStore::new(StoreConfig::default())));

        let create = format!(
            r#"{{"op":"CreateSession","source":{{"relations":[{{"name":"p","csv":{}}},{{"name":"q","csv":{}}}]}},"strategy":"local-general"}}"#,
            Json::from(csv::write_relation(&r1)).render(),
            Json::from(csv::write_relation(&r2)).render(),
        );
        let open = |h: &Handler| -> u64 {
            let r = Json::parse(&h.handle_line(&create)).unwrap();
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
            r.get("session").unwrap().as_u64().unwrap()
        };
        let durable_id = open(&durable);
        let live_id = open(&live);
        prop_assert_eq!(
            Json::parse(&durable.handle_line(&format!(
                r#"{{"op":"Stats","session":{durable_id}}}"#
            )))
            .unwrap()
            .get("total_tuples")
            .unwrap()
            .as_u64(),
            Some(scratch.stats().total_tuples),
            "CSV round trip must reproduce the instance"
        );

        // Apply the same batches to both; evict the durable session at a
        // random batch boundary (possibly before any batch, or after all).
        let evict_after = (cut as usize) % (batches.len() + 1);
        for (i, batch) in batches.iter().enumerate() {
            if i == evict_after {
                let future = Instant::now() + ttl + Duration::from_secs(1);
                prop_assert_eq!(durable.store().sweep_at(future), vec![durable_id]);
            }
            let labels: Vec<String> = batch
                .iter()
                .map(|(id, label)| format!(r#"{{"tuple":{},"label":"{label}"}}"#, id.0))
                .collect();
            for (h, id) in [(&durable, durable_id), (&live, live_id)] {
                let r = Json::parse(&h.handle_line(&format!(
                    r#"{{"op":"AnswerBatch","session":{id},"labels":[{}]}}"#,
                    labels.join(","),
                )))
                .unwrap();
                prop_assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{}", r);
                prop_assert_eq!(
                    r.get("applied").and_then(Json::as_u64),
                    Some(batch.len() as u64)
                );
            }
        }
        if evict_after == batches.len() {
            let future = Instant::now() + ttl + Duration::from_secs(1);
            prop_assert_eq!(durable.store().sweep_at(future), vec![durable_id]);
        }

        // The rehydrated engine must be indistinguishable from the
        // never-evicted one (peek resumes transparently via get).
        let durable_handle = durable.store().get(durable_id).expect("resumable");
        let live_handle = live.store().get(live_id).expect("resident");
        let durable_session = durable_handle.lock().unwrap();
        let live_session = live_handle.lock().unwrap();
        let (d, l) = (&durable_session.engine, &live_session.engine);
        prop_assert_eq!(d.result(), l.result());
        prop_assert_eq!(d.is_resolved(), l.is_resolved());
        prop_assert_eq!(
            sorted(d.candidates().candidates().to_vec()),
            sorted(l.candidates().candidates().to_vec())
        );
        prop_assert_eq!(
            sorted(d.candidates().candidates().to_vec()),
            sorted(d.recompute_candidates())
        );
        prop_assert_eq!(d.entailed_positive_ids(), l.entailed_positive_ids());
        prop_assert_eq!(d.stats(), l.stats(), "stats incl. interaction log");
        prop_assert_eq!(d.generation(), l.generation(), "one pass per batch");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
