//! The demo's Figure-4 feature as a library workflow: record a free-form
//! session, then *replay-compare* — "how many interactions would she have
//! done if she had used a strategy?"

use jim::core::session::{run_free, run_most_informative, RandomPicker};
use jim::core::strategy::StrategyKind;
use jim::core::{Engine, EngineOptions, GoalOracle, Transcript};
use jim::relation::Product;
use jim::synth::flights;

fn fresh_engine(f: &jim::relation::Relation, h: &jim::relation::Relation) -> Engine {
    let p = Product::new(vec![f, h]).unwrap();
    Engine::new(p, &EngineOptions::default()).unwrap()
}

#[test]
fn figure4_report_free_session_vs_strategy() {
    let (f, h) = (flights::flights(), flights::hotels());
    let goal = flights::q2(fresh_engine(&f, &h).universe());

    // 1. The attendee labels freely (mode 1); the session is recorded.
    let free = run_free(
        fresh_engine(&f, &h),
        false,
        &mut RandomPicker::seeded(99),
        &mut GoalOracle::new(goal.clone()),
    )
    .unwrap();
    let transcript = Transcript::capture(&free.engine);
    assert_eq!(transcript.labels.len() as u64, free.interactions);

    // 2. Replay verification: the recorded labels reproduce the state.
    let mut replayed = fresh_engine(&f, &h);
    transcript.replay(&mut replayed).unwrap();
    assert_eq!(replayed.result(), free.engine.result());
    assert_eq!(replayed.is_resolved(), free.engine.is_resolved());

    // 3. The Figure-4 bar: what a strategy would have needed for the same
    //    goal on the same instance.
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let strategic = run_most_informative(
        fresh_engine(&f, &h),
        strategy.as_mut(),
        &mut GoalOracle::new(goal.clone()),
    )
    .unwrap();
    assert!(
        strategic.interactions <= free.interactions,
        "strategy {} vs free {}",
        strategic.interactions,
        free.interactions
    );
    // Both identify instance-equivalent queries.
    assert!(strategic
        .inferred
        .instance_equivalent(&free.inferred, strategic.engine.product())
        .unwrap());
}

#[test]
fn transcripts_are_portable_across_equal_instances() {
    // Two engines built from independently constructed (but equal) data:
    // a transcript recorded on one replays on the other.
    let (f1, h1) = (flights::flights(), flights::hotels());
    let (f2, h2) = (flights::flights(), flights::hotels());
    let mut a = fresh_engine(&f1, &h1);
    for (id, label) in flights::walkthrough_labels() {
        a.label(id, label).unwrap();
    }
    let t = Transcript::capture(&a);

    let mut b = fresh_engine(&f2, &h2);
    t.replay(&mut b).unwrap();
    assert!(b.is_resolved());
    assert_eq!(b.result(), flights::q2(b.universe()));
}

#[test]
fn interrupted_session_resumes_from_transcript() {
    // Crash-resume: a session is cut short; its transcript restores the
    // exact frontier and the remaining questions finish the job.
    let (f, h) = (flights::flights(), flights::hotels());
    let goal = flights::q2(fresh_engine(&f, &h).universe());

    // Run only two answers, then "crash".
    let mut partial = fresh_engine(&f, &h);
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let mut oracle = GoalOracle::new(goal.clone());
    for _ in 0..2 {
        use jim::core::{Label, Oracle};
        let id = jim::core::strategy::choose_next(strategy.as_mut(), &partial).unwrap();
        let t = partial.product().tuple(id).unwrap();
        let l: Label = oracle.label(&t);
        partial.label(id, l).unwrap();
    }
    let snapshot = Transcript::capture(&partial);
    assert_eq!(snapshot.labels.len(), 2);

    // Resume on a fresh engine and finish.
    let mut resumed = fresh_engine(&f, &h);
    snapshot.replay(&mut resumed).unwrap();
    let mut strategy = StrategyKind::LookaheadMinPrune.build();
    let mut oracle = GoalOracle::new(goal.clone());
    let out = run_most_informative(resumed, strategy.as_mut(), &mut oracle).unwrap();
    assert!(out.resolved);
    assert!(out
        .inferred
        .instance_equivalent(&goal, out.engine.product())
        .unwrap());
}
