//! Failure injection: every way a session can go wrong must surface as a
//! typed error with the engine left in a usable state — never a panic,
//! never silent corruption.

use jim::core::session::run_most_informative;
use jim::core::strategy::StrategyKind;
use jim::core::{
    Engine, EngineOptions, FnOracle, InferenceError, Label, NoisyOracle, Oracle, Transcript,
};
use jim::relation::{Product, ProductId, Tuple};
use jim::synth::flights;

fn fresh_engine(f: &jim::relation::Relation, h: &jim::relation::Relation) -> Engine {
    let p = Product::new(vec![f, h]).unwrap();
    Engine::new(p, &EngineOptions::default()).unwrap()
}

#[test]
fn adversarial_oracle_conflict_is_detected_not_inferred() {
    // An all-negative labeling is actually consistent (the empty-result
    // query), so a conflict needs a positive first: "yes" on (3), then
    // "no" on its signature twin (4).
    let (f, h) = (flights::flights(), flights::hotels());
    let mut e = fresh_engine(&f, &h);
    // (3)+ forces U = {TC, AD}; tuple (4) (same signature) becomes
    // certain-positive. A user answering "no" on it is inconsistent.
    e.label(flights::paper_tuple(3), Label::Positive).unwrap();
    let before_stats = e.stats().clone();
    let err = e.label(flights::paper_tuple(4), Label::Negative);
    assert!(matches!(err, Err(InferenceError::InconsistentLabel { .. })));
    // The engine is untouched and still usable.
    assert_eq!(e.stats(), &before_stats);
    e.label(flights::paper_tuple(8), Label::Negative).unwrap();
}

#[test]
fn flip_flopping_noisy_session_aborts_cleanly() {
    // With 100% error the oracle answers the exact opposite of Q2. The
    // session must either converge to some (wrong but consistent) query or
    // abort with InconsistentLabel — never panic.
    let (f, h) = (flights::flights(), flights::hotels());
    for seed in 0..10u64 {
        let e = fresh_engine(&f, &h);
        let goal = flights::q2(e.universe());
        let mut oracle = NoisyOracle::new(goal.clone(), 1.0, seed);
        let mut strategy = StrategyKind::LookaheadMinPrune.build();
        match run_most_informative(e, strategy.as_mut(), &mut oracle) {
            Ok(out) => {
                // Converged on the complement-driven query: must at least
                // be internally consistent (resolved).
                assert!(out.resolved);
            }
            Err(e) => assert!(matches!(e, InferenceError::InconsistentLabel { .. })),
        }
    }
}

#[test]
fn oracle_that_contradicts_itself_on_twins() {
    // Tuples (3) and (4) share a signature. An oracle that says yes to
    // (3) and no to (4) is caught at the second answer.
    let (f, h) = (flights::flights(), flights::hotels());
    let mut e = fresh_engine(&f, &h);
    let three = e.product().tuple(flights::paper_tuple(3)).unwrap();
    let mut answered = false;
    let mut oracle = FnOracle::new(move |t: &Tuple| {
        let a = if !answered {
            Label::from_bool(*t == three)
        } else {
            Label::Negative
        };
        answered = true;
        a
    });
    e.label(flights::paper_tuple(3), {
        let t = e.product().tuple(flights::paper_tuple(3)).unwrap();
        oracle.label(&t)
    })
    .unwrap();
    let t4 = e.product().tuple(flights::paper_tuple(4)).unwrap();
    let second = oracle.label(&t4);
    assert!(matches!(
        e.label(flights::paper_tuple(4), second),
        Err(InferenceError::InconsistentLabel { .. })
    ));
}

#[test]
fn unknown_tuple_id_is_rejected() {
    let (f, h) = (flights::flights(), flights::hotels());
    let p = Product::new(vec![&f, &h]).unwrap();
    // Engine over a strict subset: a valid product rank outside the subset
    // whose signature class exists is still labelable; pick one whose
    // signature does NOT occur in the subset.
    let ids = [ProductId(0)]; // signature ∅
    let mut e = Engine::from_ids(p, &ids, &EngineOptions::default()).unwrap();
    // Rank 2 has signature {TC, AD}, absent from the subset.
    let err = e.label(ProductId(2), Label::Positive);
    assert!(matches!(err, Err(InferenceError::UnknownTuple { .. })));
    // Out-of-range rank errors at the relational layer.
    let err = e.label(ProductId(99), Label::Positive);
    assert!(matches!(err, Err(InferenceError::Relation(_))));
}

#[test]
fn product_guard_and_sampling_path() {
    let (f, h) = (flights::flights(), flights::hotels());
    let p = Product::new(vec![&f, &h]).unwrap();
    let opts = EngineOptions {
        max_product: 11,
        ..Default::default()
    };
    assert!(matches!(
        Engine::new(p.clone(), &opts),
        Err(InferenceError::ProductTooLarge { .. })
    ));
    // from_ids bypasses the guard deliberately (the caller sampled).
    let ids: Vec<ProductId> = (0..12).map(ProductId).collect();
    assert!(Engine::from_ids(p, &ids, &opts).is_ok());
}

#[test]
fn forged_transcript_against_grown_instance_is_rejected() {
    let (f, h) = (flights::flights(), flights::hotels());
    let mut e = fresh_engine(&f, &h);
    e.label(flights::paper_tuple(3), Label::Positive).unwrap();
    let mut t = Transcript::capture(&e);
    // Tamper: claim a different instance size.
    t.tuples = 13;
    let mut fresh = fresh_engine(&f, &h);
    assert!(t.replay(&mut fresh).is_err());
    // Untampered replays fine.
    let t = Transcript::capture(&e);
    let mut fresh = fresh_engine(&f, &h);
    assert_eq!(t.replay(&mut fresh).unwrap(), 1);
}

#[test]
fn transcript_with_out_of_range_rank_fails_replay() {
    let (f, h) = (flights::flights(), flights::hotels());
    let e = fresh_engine(&f, &h);
    let text = format!(
        "#jim-transcript v1\n#schema {}\n#tuples 12\n+ 50\n",
        e.product().schema()
    );
    let t = Transcript::parse(&text).unwrap();
    let mut fresh = fresh_engine(&f, &h);
    assert!(matches!(
        t.replay(&mut fresh),
        Err(InferenceError::Relation(_))
    ));
}

#[test]
fn double_labeling_after_session_is_rejected() {
    let (f, h) = (flights::flights(), flights::hotels());
    let e = fresh_engine(&f, &h);
    let goal = flights::q1(e.universe());
    let mut oracle = jim::core::GoalOracle::new(goal);
    let mut strategy = StrategyKind::LocalGeneral.build();
    let out = run_most_informative(e, strategy.as_mut(), &mut oracle).unwrap();
    let mut engine = out.engine;
    let labeled = engine.stats().log[0].tuple;
    assert!(matches!(
        engine.label(labeled, Label::Positive),
        Err(InferenceError::AlreadyLabeled { .. })
    ));
}
